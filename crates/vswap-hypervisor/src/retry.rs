//! Bounded retry with exponential backoff for fallible disk I/O.
//!
//! The hypervisor's storage emulation is where transient device errors
//! surface: a real QEMU retries a failed request a few times (with
//! growing pauses, so a congested device can drain) before declaring the
//! I/O dead and falling back to degraded service. [`RetryPolicy`]
//! captures exactly that decision procedure in simulated time; the host
//! kernel consults it around every [`vswap-disk`] submission.
//!
//! [`vswap-disk`]: ../vswap_disk/index.html

use sim_core::SimDuration;

/// When to resubmit a failed request, and when to give up.
///
/// # Examples
///
/// ```
/// use vswap_hypervisor::RetryPolicy;
///
/// let policy = RetryPolicy::paper_default();
/// // Backoff doubles per attempt: 100us, 200us, 400us, ...
/// assert_eq!(policy.backoff(1).as_nanos(), 2 * policy.backoff(0).as_nanos());
/// // The first failure is always worth one retry.
/// assert!(policy.should_retry(1, policy.backoff(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts allowed per request (first try included).
    pub max_attempts: u32,
    /// Pause before the first resubmission; doubles each further attempt.
    pub base_backoff: SimDuration,
    /// Give up once a request has been in flight this long, even with
    /// attempts left (a timed-out device holds the queue for multiples of
    /// its nominal service time, so attempts alone bound time poorly).
    pub deadline: SimDuration,
}

impl RetryPolicy {
    /// The default used by every experiment: six attempts, 100 us base
    /// backoff, and a one-second deadline — generous enough that every
    /// bounded fault burst (`max_burst` below the attempt budget) is
    /// ridden out, while a permanently bad sector fails fast.
    pub fn paper_default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: SimDuration::from_micros(100),
            deadline: SimDuration::from_millis(1000),
        }
    }

    /// The pause after failed attempt number `attempt` (0-based):
    /// `base_backoff << attempt`, saturating.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = 1u64 << attempt.min(20);
        self.base_backoff * factor
    }

    /// True if a request that has already failed `attempts` times and
    /// been in flight for `elapsed` deserves another submission.
    pub fn should_retry(&self, attempts: u32, elapsed: SimDuration) -> bool {
        attempts < self.max_attempts && elapsed < self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy::paper_default();
        assert_eq!(p.backoff(0), SimDuration::from_micros(100));
        assert_eq!(p.backoff(3), SimDuration::from_micros(800));
        // Deep attempts clamp instead of overflowing.
        assert_eq!(p.backoff(64), p.backoff(20));
    }

    #[test]
    fn attempt_budget_bounds_retries() {
        let p = RetryPolicy::paper_default();
        assert!(p.should_retry(1, SimDuration::ZERO));
        assert!(p.should_retry(5, SimDuration::ZERO));
        assert!(!p.should_retry(6, SimDuration::ZERO));
    }

    #[test]
    fn deadline_bounds_time_in_flight() {
        let p = RetryPolicy::paper_default();
        assert!(p.should_retry(1, SimDuration::from_millis(999)));
        assert!(!p.should_retry(1, SimDuration::from_millis(1000)));
    }

    #[test]
    fn total_backoff_fits_well_under_the_deadline() {
        let p = RetryPolicy::paper_default();
        let mut total = SimDuration::ZERO;
        for attempt in 0..p.max_attempts {
            total += p.backoff(attempt);
        }
        assert!(total < p.deadline, "backoff schedule must not eat the deadline");
    }
}
