//! Hypervisor-level components of the VSwapper reproduction.
//!
//! * [`vm`] — per-VM specifications: how much memory the guest believes it
//!   has vs. what the host actually grants it, VCPU count, and the
//!   asynchronous-page-fault capability that lets multi-VCPU Linux guests
//!   overlap host swap-ins with computation (§5.1, pbzip2),
//! * [`balloon`] — a [MOM]-style dynamic balloon manager: a host daemon
//!   that samples host and guest memory statistics every interval and
//!   inflates/deflates balloons at a bounded rate. Its *reaction lag* is
//!   the phenomenon behind Figure 4 and Figure 14: "ballooning is
//!   insufficiently responsive" under changing load,
//! * [`retry`] — the bounded retry/backoff policy the storage emulation
//!   applies to failed disk requests (fault injection support),
//! * [`pressure`] — host memory-pressure signals ([`HostPressure`]) and the
//!   debounced sustained-pressure detector ([`PressureTracker`]) the cluster
//!   scheduler uses to decide when to migrate a guest off a thrashing host.
//!
//! [MOM]: https://www.ibm.com/developerworks/library/l-overcommit-kvm-resources/
//!
//! # Examples
//!
//! ```
//! use vswap_hypervisor::VmSpec;
//! use vswap_mem::MemBytes;
//!
//! let spec = VmSpec::linux("guest0", MemBytes::from_mb(512), MemBytes::from_mb(100));
//! assert_eq!(spec.balloon_target_pages(), (512 - 100) * 256);
//! ```

#![warn(missing_docs)]

pub mod balloon;
pub mod pressure;
pub mod retry;
pub mod vm;

pub use balloon::{BalloonManager, BalloonPolicy, VmTelemetry};
pub use pressure::{DegradationTracker, HostPressure, PressureTracker};
pub use retry::RetryPolicy;
pub use vm::VmSpec;
