//! A MOM-style dynamic balloon manager.
//!
//! The Memory Overcommitment Manager is a host daemon that periodically
//! samples host and guest statistics and adjusts balloon targets. Two
//! properties matter for reproducing the paper:
//!
//! 1. **It works at steady state** — given time, it moves memory to the
//!    guests that need it, making ballooning beat uncooperative swapping
//!    (Figure 3).
//! 2. **It reacts with lag** — targets move at a bounded rate once per
//!    sampling interval, so a guest whose demand spikes keeps paying for
//!    host swapping (or guest thrashing) until the manager catches up
//!    (Figures 4 and 14).

use sim_core::{SimDuration, SimTime};
use sim_obs::{Event, EventLog};
use vswap_mem::VmId;

/// Tuning knobs of the balloon manager.
#[derive(Debug, Clone)]
pub struct BalloonPolicy {
    /// Sampling interval between adjustment rounds.
    pub interval: SimDuration,
    /// Host free-memory fraction below which the manager inflates.
    pub host_pressure_low: f64,
    /// Host free-memory fraction above which the manager deflates.
    pub host_free_high: f64,
    /// Guest free-memory fraction below which a guest is "under pressure"
    /// and its balloon deflates even when the host is tight.
    pub guest_pressure_free: f64,
    /// Largest per-round target change, as a fraction of guest memory.
    pub step_fraction: f64,
    /// Hard ceiling on a balloon, as a fraction of guest memory (VMware
    /// caps at 65%, §2.2).
    pub max_fraction: f64,
}

impl Default for BalloonPolicy {
    fn default() -> Self {
        BalloonPolicy {
            interval: SimDuration::from_secs(1),
            host_pressure_low: 0.20,
            host_free_high: 0.30,
            guest_pressure_free: 0.05,
            step_fraction: 0.05,
            max_fraction: 0.65,
        }
    }
}

/// The statistics the manager samples from one VM each round.
#[derive(Debug, Clone, Copy)]
pub struct VmTelemetry {
    /// The VM being sampled.
    pub vm: VmId,
    /// Guest-perceived memory size in pages.
    pub guest_total_pages: u64,
    /// Pages on the guest free list.
    pub guest_free_pages: u64,
    /// Current balloon size in pages.
    pub balloon_pages: u64,
    /// Guest swap-outs since the previous sample (a thrashing signal).
    pub recent_guest_swap_outs: u64,
}

/// A balloon-target adjustment for one VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalloonTarget {
    /// The VM whose balloon should move.
    pub vm: VmId,
    /// The new target size in pages.
    pub target_pages: u64,
}

/// The manager itself. Call [`BalloonManager::poll`] with the current time
/// and fresh telemetry; it returns adjustments only when a full sampling
/// interval has elapsed.
///
/// # Examples
///
/// ```
/// use sim_core::{SimDuration, SimTime};
/// use vswap_hypervisor::{BalloonManager, BalloonPolicy, VmTelemetry};
/// use vswap_mem::VmId;
///
/// let mut mom = BalloonManager::new(BalloonPolicy::default());
/// let telemetry = [VmTelemetry {
///     vm: VmId::new(0),
///     guest_total_pages: 131_072,
///     guest_free_pages: 100_000,
///     balloon_pages: 0,
///     recent_guest_swap_outs: 0,
/// }];
/// // Host memory very tight: the idle guest's balloon must start growing.
/// let targets = mom.poll(SimTime::from_nanos(2_000_000_000), 0.05, &telemetry);
/// assert_eq!(targets.len(), 1);
/// assert!(targets[0].target_pages > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BalloonManager {
    policy: BalloonPolicy,
    last_round: Option<SimTime>,
    /// Structured event sink; disabled (free) unless attached.
    events: EventLog,
}

impl BalloonManager {
    /// Creates a manager with the given policy.
    pub fn new(policy: BalloonPolicy) -> Self {
        BalloonManager { policy, last_round: None, events: EventLog::disabled() }
    }

    /// Attaches a structured event log; target decisions then emit
    /// [`Event::BalloonTarget`] records.
    pub fn set_event_log(&mut self, events: EventLog) {
        self.events = events;
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.policy.interval
    }

    /// True when [`BalloonManager::poll`] would run a sampling round at
    /// `now` — lets the caller skip gathering telemetry on the (vastly
    /// more common) steps where the round is rate-limited away.
    pub fn due(&self, now: SimTime) -> bool {
        match self.last_round {
            Some(last) => now.saturating_since(last) >= self.policy.interval,
            None => true,
        }
    }

    /// Runs one sampling round if the interval has elapsed since the last
    /// one. `host_free_fraction` is the host's free-frame ratio. Returns
    /// the target changes to apply (empty when it is not yet time, or
    /// nothing needs to move).
    pub fn poll(
        &mut self,
        now: SimTime,
        host_free_fraction: f64,
        telemetry: &[VmTelemetry],
    ) -> Vec<BalloonTarget> {
        match self.last_round {
            Some(last) if now.saturating_since(last) < self.policy.interval => return Vec::new(),
            _ => self.last_round = Some(now),
        }

        let mut out = Vec::new();
        for t in telemetry {
            let step = ((t.guest_total_pages as f64) * self.policy.step_fraction) as u64;
            let max = ((t.guest_total_pages as f64) * self.policy.max_fraction) as u64;
            let guest_free_frac = t.guest_free_pages as f64 / t.guest_total_pages as f64;
            let guest_pressed =
                guest_free_frac < self.policy.guest_pressure_free || t.recent_guest_swap_outs > 0;

            let target = if guest_pressed && t.balloon_pages > 0 {
                // The guest needs its memory back; give it up at a
                // bounded rate even if the host is tight.
                t.balloon_pages.saturating_sub(step)
            } else if host_free_fraction < self.policy.host_pressure_low && !guest_pressed {
                // Host is tight and this guest has slack: squeeze it.
                (t.balloon_pages + step).min(max)
            } else if host_free_fraction > self.policy.host_free_high && t.balloon_pages > 0 {
                // Host has plenty: relax.
                t.balloon_pages.saturating_sub(step)
            } else {
                t.balloon_pages
            };

            if target != t.balloon_pages {
                self.events.emit_with(now, Some(t.vm.get()), || Event::BalloonTarget {
                    target_pages: target,
                });
                out.push(BalloonTarget { vm: t.vm, target_pages: target });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry(vm: u32, free: u64, balloon: u64, swaps: u64) -> VmTelemetry {
        VmTelemetry {
            vm: VmId::new(vm),
            guest_total_pages: 100_000,
            guest_free_pages: free,
            balloon_pages: balloon,
            recent_guest_swap_outs: swaps,
        }
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn respects_sampling_interval() {
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        let t = [telemetry(0, 80_000, 0, 0)];
        assert!(!mom.poll(at(1), 0.05, &t).is_empty());
        // 200 ms later: not yet time.
        let early = at(1) + SimDuration::from_millis(200);
        assert!(mom.poll(early, 0.05, &t).is_empty());
        assert!(!mom.poll(at(3), 0.05, &t).is_empty());
    }

    #[test]
    fn inflates_idle_guest_under_host_pressure() {
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        let out = mom.poll(at(1), 0.10, &[telemetry(0, 80_000, 0, 0)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target_pages, 5_000, "one bounded step");
    }

    #[test]
    fn inflation_is_rate_limited_and_capped() {
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        let mut balloon = 0;
        for round in 1..100 {
            let out = mom.poll(at(round), 0.05, &[telemetry(0, 80_000, balloon, 0)]);
            if let Some(t) = out.first() {
                assert!(t.target_pages <= balloon + 5_000, "steps are bounded");
                balloon = t.target_pages;
            }
        }
        assert_eq!(balloon, 65_000, "capped at 65% of guest memory");
    }

    #[test]
    fn deflates_pressured_guest_even_when_host_is_tight() {
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        // Guest is swapping: its balloon must shrink despite host pressure.
        let out = mom.poll(at(1), 0.05, &[telemetry(0, 1_000, 30_000, 500)]);
        assert_eq!(out, vec![BalloonTarget { vm: VmId::new(0), target_pages: 25_000 }]);
    }

    #[test]
    fn deflates_when_host_has_plenty() {
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        let out = mom.poll(at(1), 0.50, &[telemetry(0, 50_000, 10_000, 0)]);
        assert_eq!(out, vec![BalloonTarget { vm: VmId::new(0), target_pages: 5_000 }]);
    }

    #[test]
    fn steady_state_emits_nothing() {
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        // Host comfortable, guest comfortable, no balloon: no change.
        let out = mom.poll(at(1), 0.25, &[telemetry(0, 50_000, 0, 0)]);
        assert!(out.is_empty());
    }

    #[test]
    fn reaction_lag_takes_many_rounds() {
        // The Figure 14 phenomenon in miniature: a guest that suddenly
        // needs its 40k ballooned pages back gets them ~5k per second.
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        let mut balloon = 40_000u64;
        let mut rounds = 0;
        for round in 1..60 {
            let out = mom.poll(at(round), 0.05, &[telemetry(0, 500, balloon, 100)]);
            if let Some(t) = out.first() {
                balloon = t.target_pages;
            }
            rounds = round;
            if balloon == 0 {
                break;
            }
        }
        assert_eq!(balloon, 0);
        assert!(rounds >= 8, "full deflation must take several seconds, took {rounds}");
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn first_poll_always_runs() {
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        // Even at t=0 the first round executes (no prior round).
        let out = mom.poll(
            SimTime::ZERO,
            0.05,
            &[VmTelemetry {
                vm: VmId::new(0),
                guest_total_pages: 1000,
                guest_free_pages: 900,
                balloon_pages: 0,
                recent_guest_swap_outs: 0,
            }],
        );
        assert!(!out.is_empty());
    }

    #[test]
    fn empty_telemetry_is_fine() {
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        assert!(mom.poll(SimTime::from_nanos(1), 0.01, &[]).is_empty());
    }

    #[test]
    fn balloon_never_exceeds_cap_even_from_above() {
        let mut mom = BalloonManager::new(BalloonPolicy::default());
        // A balloon somehow above the cap (e.g. policy change) must not
        // grow further under pressure.
        let out = mom.poll(
            SimTime::from_nanos(1),
            0.05,
            &[VmTelemetry {
                vm: VmId::new(0),
                guest_total_pages: 100_000,
                guest_free_pages: 90_000,
                balloon_pages: 70_000, // above the 65% cap
                recent_guest_swap_outs: 0,
            }],
        );
        // Target clamps to the cap (i.e. shrinks toward it).
        assert_eq!(out.len(), 1);
        assert!(out[0].target_pages <= 65_000);
    }

    #[test]
    fn interval_accessor_reports_policy() {
        let mom = BalloonManager::new(BalloonPolicy {
            interval: SimDuration::from_millis(250),
            ..BalloonPolicy::default()
        });
        assert_eq!(mom.interval(), SimDuration::from_millis(250));
    }
}
