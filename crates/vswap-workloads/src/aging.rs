//! Guest aging: make a fresh guest look like one that has been up for a
//! while.
//!
//! The paper's iterated-Sysbench setup describes a guest "believing it
//! has 512 MB whereas in fact it is allocated only 100 MB *and all the
//! rest has been reclaimed by the host*" — i.e. the guest had touched
//! essentially its whole physical memory before the measurement began.
//! [`AgeGuest`] reproduces that state: it streams a scratch file sized to
//! the guest's memory through the page cache (cycling every frame through
//! use) and then drops the cache, leaving the free list full of frames
//! whose *host-side* state is swapped-out or discarded.

use sim_core::DeterministicRng;
use vswap_guestos::{FileId, GuestCtx, GuestError, GuestProgram, StepOutcome};

/// Pages processed per scheduler step (one aging "episode").
const CHUNK_PAGES: u64 = 256;

/// Streams a guest-memory-sized scratch file through the cache — in a
/// shuffled chunk order, because real uptime touches memory in no
/// particular order — then drops caches. See the module docs.
#[derive(Debug)]
pub struct AgeGuest {
    scratch: Option<FileId>,
    chunks: Vec<u64>,
    next: usize,
    rng: DeterministicRng,
}

impl AgeGuest {
    /// Creates the aging pass.
    pub fn new() -> Self {
        AgeGuest {
            scratch: None,
            chunks: Vec::new(),
            next: 0,
            rng: DeterministicRng::seed_from(0xa9e),
        }
    }
}

impl Default for AgeGuest {
    fn default() -> Self {
        AgeGuest::new()
    }
}

impl GuestProgram for AgeGuest {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
        let scratch = match self.scratch {
            Some(f) => f,
            None => {
                // Size the scratch to guest memory: enough to cycle every
                // frame at least once.
                let pages = ctx.kernel().spec().memory.pages();
                let f = ctx.create_file(pages)?;
                self.scratch = Some(f);
                self.chunks = (0..pages / CHUNK_PAGES).map(|c| c * CHUNK_PAGES).collect();
                self.rng.shuffle(&mut self.chunks);
                f
            }
        };
        let Some(&start) = self.chunks.get(self.next) else {
            ctx.drop_caches();
            return Ok(StepOutcome::Done);
        };
        self.next += 1;
        ctx.read_file(scratch, start, CHUNK_PAGES)?;
        Ok(StepOutcome::Running)
    }

    fn name(&self) -> &str {
        "age-guest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vswap_core::{Machine, MachineConfig, SwapPolicy};
    use vswap_guestos::GuestSpec;
    use vswap_hostos::HostSpec;
    use vswap_hypervisor::VmSpec;
    use vswap_mem::MemBytes;

    #[test]
    fn aging_leaves_cache_empty_and_free_list_full() {
        let host = HostSpec {
            dram: MemBytes::from_mb(64),
            disk_pages: MemBytes::from_mb(512).pages(),
            swap_pages: MemBytes::from_mb(64).pages(),
            hypervisor_code_pages: 16,
            ..HostSpec::paper_testbed()
        };
        let mut m =
            Machine::new(MachineConfig::preset(SwapPolicy::Baseline).with_host(host)).unwrap();
        let spec =
            VmSpec::linux("g", MemBytes::from_mb(32), MemBytes::from_mb(8)).with_guest(GuestSpec {
                memory: MemBytes::from_mb(32),
                disk: MemBytes::from_mb(256),
                swap: MemBytes::from_mb(32),
                kernel_pages: MemBytes::from_mb(2).pages(),
                boot_file_pages: MemBytes::from_mb(4).pages(),
                boot_anon_pages: MemBytes::from_mb(2).pages(),
                ..GuestSpec::linux_default()
            });
        let vm = m.add_vm(spec).unwrap();
        m.launch(vm, Box::new(AgeGuest::new()));
        let report = m.run();
        assert!(report.vm(vm).completed());
        assert_eq!(m.guest(vm).cache_pages(), 0, "cache dropped");
        // Nearly every non-kernel frame went through the cache.
        let spec_pages = MemBytes::from_mb(32).pages();
        assert!(m.guest(vm).free_pages() > spec_pages * 8 / 10);
        m.host().audit().unwrap();
    }
}
