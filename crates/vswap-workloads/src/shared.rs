//! A file handle shared between workload launches on the same VM.
//!
//! Iterated experiments (e.g. Sysbench, Figure 9) run one workload per
//! iteration on the same guest, all touching the same file. Programs are
//! moved into the machine when launched, so the file identity is passed
//! through a small shared cell.

use std::cell::Cell;
use std::rc::Rc;
use vswap_guestos::FileId;

/// A shared, late-bound guest file identity.
///
/// # Examples
///
/// ```
/// use vswap_workloads::SharedFile;
///
/// let shared = SharedFile::new();
/// assert!(shared.get().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedFile {
    inner: Rc<Cell<Option<FileId>>>,
}

impl SharedFile {
    /// Creates an unbound handle.
    pub fn new() -> Self {
        SharedFile::default()
    }

    /// Binds the handle to a file (once created by a prepare phase).
    pub fn set(&self, file: FileId) {
        self.inner.set(Some(file));
    }

    /// The bound file, if any.
    pub fn get(&self) -> Option<FileId> {
        self.inner.get()
    }

    /// The bound file.
    ///
    /// # Panics
    ///
    /// Panics if no prepare phase bound the handle yet.
    pub fn expect_bound(&self) -> FileId {
        self.get().expect("file not yet bound; run the prepare workload first")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_binding() {
        let a = SharedFile::new();
        let b = a.clone();
        assert!(b.get().is_none());
        // FileId has no public constructor; bind through a guest.
        let mut guest = vswap_guestos::GuestKernel::new(vswap_guestos::GuestSpec::small_test(), 1);
        let f = guest.create_file(4).unwrap();
        a.set(f);
        assert_eq!(b.get(), Some(f));
        assert_eq!(b.expect_bound(), f);
    }

    #[test]
    #[should_panic(expected = "not yet bound")]
    fn unbound_expect_panics() {
        SharedFile::new().expect_bound();
    }
}
