//! Synthetic analogues of the paper's evaluation workloads.
//!
//! The paper's experiments run real applications (Sysbench, pbzip2,
//! Kernbench, DaCapo Eclipse, Metis MapReduce). What the memory system
//! sees of those applications is an *access pattern*: how much file data
//! is scanned and how sequentially, how much anonymous memory is hot vs.
//! streamed, how much page zeroing process churn causes. Each module here
//! reproduces one workload's pattern, calibrated to the paper's setup:
//!
//! * [`sysbench`] — sequential file reads through the guest page cache
//!   (Figures 3 and 9, Table 2, and the Windows experiments of §5.4);
//! * [`alloctouch`] — fork + allocate + sequentially access anonymous
//!   memory (the false-reads microbenchmark, Figure 10);
//! * [`pbzip2`] — parallel block compression: streaming file input,
//!   a hot dictionary working set, compressed output (Figures 5 and 11);
//! * [`kernbench`] — a compile farm: many small source reads, short-lived
//!   processes whose address spaces are zeroed at birth (Figure 12);
//! * [`eclipse`] — a JVM-like heap with periodic full-heap GC sweeps, the
//!   LRU-pathological case (Figures 13 and 15);
//! * [`mapreduce`] — the Metis word-count run: large input scan plus a
//!   big randomly-touched in-memory table (Figures 4 and 14).
//!
//! All workloads implement [`GuestProgram`](vswap_guestos::GuestProgram)
//! and are deterministic given their seed.

#![warn(missing_docs)]

pub mod aging;
pub mod alloctouch;
pub mod daemon;
pub mod eclipse;
pub mod kernbench;
pub mod mapreduce;
pub mod pbzip2;
pub mod shared;
pub mod sysbench;

pub use aging::AgeGuest;
pub use alloctouch::AllocStream;
pub use daemon::{Daemon, DaemonConfig};
pub use eclipse::Eclipse;
pub use kernbench::Kernbench;
pub use mapreduce::MapReduce;
pub use pbzip2::Pbzip2;
pub use shared::SharedFile;
pub use sysbench::{SysbenchPrepare, SysbenchRead};
