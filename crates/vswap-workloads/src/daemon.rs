//! A background daemon: the low-grade ambient activity of a real guest
//! OS (cron, journald, sshd, monitoring agents).
//!
//! Benchmarks in the paper ran inside full Ubuntu guests; the ambient
//! processes matter because their allocations interleave with the
//! benchmark's in every reclaim and swap-slot stream, compounding the
//! scatter behind *decayed swap sequentiality*.

use sim_core::{DeterministicRng, SimDuration};
use vswap_guestos::{FileId, GuestCtx, GuestError, GuestProgram, ProcId, StepOutcome};
use vswap_mem::{MemBytes, Vpn};

/// Tuning of the daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Total ticks before the daemon exits.
    pub ticks: u64,
    /// Pause between ticks (daemons are mostly idle).
    pub interval: SimDuration,
    /// Size of the daemon's file (logs, databases) in pages.
    pub file_pages: u64,
    /// Size of the daemon's anonymous arena in pages.
    pub anon_pages: u64,
    /// Random file pages read per tick.
    pub reads_per_tick: u64,
    /// File pages appended (written) per tick.
    pub writes_per_tick: u64,
    /// Random anonymous pages touched per tick.
    pub touches_per_tick: u64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            ticks: 1000,
            interval: SimDuration::from_millis(100),
            file_pages: MemBytes::from_mb(32).pages(),
            anon_pages: MemBytes::from_mb(8).pages(),
            reads_per_tick: 4,
            writes_per_tick: 1,
            touches_per_tick: 2,
            seed: 0xdae,
        }
    }
}

/// The daemon workload. See the module docs.
#[derive(Debug)]
pub struct Daemon {
    cfg: DaemonConfig,
    file: Option<FileId>,
    proc: Option<(ProcId, Vpn)>,
    tick: u64,
    rng: DeterministicRng,
}

impl Daemon {
    /// Creates the daemon with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if any size in the config is zero.
    pub fn new(cfg: DaemonConfig) -> Self {
        assert!(cfg.ticks > 0 && cfg.file_pages > 0 && cfg.anon_pages > 0);
        let rng = DeterministicRng::seed_from(cfg.seed);
        Daemon { cfg, file: None, proc: None, tick: 0, rng }
    }
}

impl GuestProgram for Daemon {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
        let (file, proc, base) = match (self.file, self.proc) {
            (Some(f), Some((p, b))) => (f, p, b),
            _ => {
                let f = ctx.create_file(self.cfg.file_pages)?;
                let p = ctx.spawn_process();
                let b = ctx.alloc_anon(p, self.cfg.anon_pages)?;
                self.file = Some(f);
                self.proc = Some((p, b));
                return Ok(StepOutcome::Running);
            }
        };
        for _ in 0..self.cfg.reads_per_tick {
            let page = self.rng.below(self.cfg.file_pages);
            ctx.read_file(file, page, 1)?;
        }
        for _ in 0..self.cfg.writes_per_tick {
            let page = self.rng.below(self.cfg.file_pages);
            ctx.write_file(file, page, 1)?;
        }
        for _ in 0..self.cfg.touches_per_tick {
            let vpn = self.rng.below(self.cfg.anon_pages);
            ctx.touch_anon(proc, base.offset(vpn), self.rng.chance(0.5))?;
        }
        // Daemons sleep between ticks.
        ctx.compute(self.cfg.interval);
        self.tick += 1;
        if self.tick >= self.cfg.ticks {
            Ok(StepOutcome::Done)
        } else {
            Ok(StepOutcome::Running)
        }
    }

    fn name(&self) -> &str {
        "daemon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedFile;
    use crate::sysbench::{SysbenchPrepare, SysbenchRead};
    use vswap_core::{Machine, MachineConfig, SwapPolicy};
    use vswap_guestos::GuestSpec;
    use vswap_hostos::HostSpec;
    use vswap_hypervisor::VmSpec;

    #[test]
    fn daemon_and_benchmark_time_share_a_guest() {
        let host = HostSpec {
            dram: MemBytes::from_mb(64),
            disk_pages: MemBytes::from_mb(512).pages(),
            swap_pages: MemBytes::from_mb(64).pages(),
            hypervisor_code_pages: 16,
            ..HostSpec::paper_testbed()
        };
        let mut m =
            Machine::new(MachineConfig::preset(SwapPolicy::Baseline).with_host(host)).unwrap();
        let vm = m
            .add_vm(VmSpec::linux("g", MemBytes::from_mb(32), MemBytes::from_mb(8)).with_guest(
                GuestSpec {
                    memory: MemBytes::from_mb(32),
                    disk: MemBytes::from_mb(256),
                    swap: MemBytes::from_mb(32),
                    kernel_pages: MemBytes::from_mb(2).pages(),
                    boot_file_pages: MemBytes::from_mb(4).pages(),
                    boot_anon_pages: MemBytes::from_mb(2).pages(),
                    ..GuestSpec::linux_default()
                },
            ))
            .unwrap();
        let shared = SharedFile::new();
        m.launch(vm, Box::new(SysbenchPrepare::new(MemBytes::from_mb(12).pages(), shared.clone())));
        m.run();
        let daemon = Daemon::new(DaemonConfig {
            ticks: 40,
            file_pages: MemBytes::from_mb(4).pages(),
            anon_pages: MemBytes::from_mb(1).pages(),
            ..DaemonConfig::default()
        });
        m.launch(vm, Box::new(daemon));
        m.launch(vm, Box::new(SysbenchRead::new(shared)));
        // Drive until the benchmark (not necessarily the daemon) retires.
        let before = m.completed_workloads(vm);
        while m.completed_workloads(vm) < before + 2 && m.step() {}
        let report = m.report();
        assert!(report.vm_history(vm).any(|w| w.workload == "daemon"));
        assert!(report.vm_history(vm).any(|w| w.workload == "sysbench-seqrd"));
        m.host().audit().unwrap();
    }
}
