//! The Metis MapReduce word-count workload (Figures 4 and 14).
//!
//! What the memory system sees: a sequential scan of a large input file
//! (map phase) interleaved with writes to a large, randomly indexed
//! in-memory hash table that *grows as keys are inserted*; then a
//! sequential sweep of the whole table (reduce phase) and a small output.
//! Memory demand therefore ramps up over the run — the "changing load"
//! that makes life hard for balloon managers (§2.3).

use sim_core::{DeterministicRng, SimDuration};
use vswap_guestos::{FileId, GuestCtx, GuestError, GuestProgram, ProcId, StepOutcome};
use vswap_mem::{MemBytes, Vpn};

/// Tuning of the MapReduce analogue.
#[derive(Debug, Clone)]
pub struct MapReduceConfig {
    /// Input file size in pages (the paper's word-count input is 300 MB).
    pub input_pages: u64,
    /// Final hash-table size in pages (Metis holds ~1 GB of tables).
    pub table_pages: u64,
    /// Input pages consumed per map step.
    pub chunk_pages: u64,
    /// Random table insertions (page writes) per map step.
    pub inserts_per_chunk: u64,
    /// Fixed intermediate-buffer footprint (Metis key arrays, reused by
    /// the allocator across splits); a slice is re-touched every chunk.
    pub scratch_pages: u64,
    /// Scratch pages re-touched per map step.
    pub scratch_touches_per_chunk: u64,
    /// Output file size in pages.
    pub output_pages: u64,
    /// Map CPU time per input page.
    pub map_cpu_per_page: SimDuration,
    /// Reduce CPU time per table page.
    pub reduce_cpu_per_page: SimDuration,
    /// Table pages swept per reduce step.
    pub reduce_chunk: u64,
    /// Deterministic seed for the insert pattern.
    pub seed: u64,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        MapReduceConfig {
            input_pages: MemBytes::from_mb(300).pages(),
            table_pages: MemBytes::from_mb(560).pages(),
            chunk_pages: 64,
            inserts_per_chunk: 192,
            scratch_pages: MemBytes::from_mb(96).pages(),
            scratch_touches_per_chunk: 128,
            output_pages: MemBytes::from_mb(16).pages(),
            map_cpu_per_page: SimDuration::from_micros(350),
            reduce_cpu_per_page: SimDuration::from_micros(25),
            reduce_chunk: 2048,
            seed: 0x3a9,
        }
    }
}

#[derive(Debug)]
enum Phase {
    Setup,
    /// First-touching the hash-table arrays (Metis allocates them up
    /// front — the demand spike that catches balloon managers flat).
    Warmup {
        pos: u64,
    },
    Map,
    Reduce {
        pos: u64,
    },
    Output {
        pos: u64,
    },
}

/// The MapReduce analogue. See the module docs.
#[derive(Debug)]
pub struct MapReduce {
    cfg: MapReduceConfig,
    phase: Phase,
    input: Option<FileId>,
    output: Option<FileId>,
    proc: Option<(ProcId, Vpn)>,
    scratch: Option<Vpn>,
    in_pos: u64,
    scratch_cursor: u64,
    rng: DeterministicRng,
}

impl MapReduce {
    /// Creates the workload with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if any size in the config is zero.
    pub fn new(cfg: MapReduceConfig) -> Self {
        assert!(cfg.input_pages > 0 && cfg.table_pages > 0 && cfg.chunk_pages > 0);
        assert!(cfg.output_pages > 0 && cfg.reduce_chunk > 0);
        let rng = DeterministicRng::seed_from(cfg.seed);
        MapReduce {
            cfg,
            phase: Phase::Setup,
            input: None,
            output: None,
            proc: None,
            scratch: None,
            in_pos: 0,
            scratch_cursor: 0,
            rng,
        }
    }

    /// The workload at the paper's scale, seeded per guest.
    pub fn paper_default(seed: u64) -> Self {
        MapReduce::new(MapReduceConfig { seed, ..MapReduceConfig::default() })
    }
}

impl GuestProgram for MapReduce {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
        match self.phase {
            Phase::Setup => {
                let input = ctx.create_file(self.cfg.input_pages)?;
                let output = ctx.create_file(self.cfg.output_pages)?;
                let proc = ctx.spawn_process();
                let table = ctx.alloc_anon(proc, self.cfg.table_pages)?;
                let scratch = ctx.alloc_anon(proc, self.cfg.scratch_pages.max(1))?;
                self.input = Some(input);
                self.output = Some(output);
                self.proc = Some((proc, table));
                self.scratch = Some(scratch);
                self.phase = Phase::Warmup { pos: 0 };
                Ok(StepOutcome::Running)
            }
            Phase::Warmup { pos } => {
                // Metis zeroes its table arrays at start: the memory
                // demand arrives as a spike, not a ramp.
                let (proc, table) = self.proc.expect("setup ran");
                let count = 2048.min(self.cfg.table_pages - pos);
                for i in 0..count {
                    ctx.touch_anon(proc, table.offset(pos + i), true)?;
                }
                let next = pos + count;
                self.phase = if next == self.cfg.table_pages {
                    Phase::Map
                } else {
                    Phase::Warmup { pos: next }
                };
                Ok(StepOutcome::Running)
            }
            Phase::Map => {
                let input = self.input.expect("setup ran");
                let (proc, table) = self.proc.expect("setup ran");

                let count = self.cfg.chunk_pages.min(self.cfg.input_pages - self.in_pos);
                ctx.read_file(input, self.in_pos, count)?;
                self.in_pos += count;

                // Insertions hash across the whole table.
                for _ in 0..self.cfg.inserts_per_chunk {
                    let page = self.rng.below(self.cfg.table_pages);
                    ctx.touch_anon(proc, table.offset(page), true)?;
                }

                // Intermediate buffers are reused in place (malloc), so
                // they are simply part of the hot working set.
                if self.cfg.scratch_pages > 0 {
                    let scratch = self.scratch.expect("setup ran");
                    for i in 0..self.cfg.scratch_touches_per_chunk {
                        let page = (self.scratch_cursor + i) % self.cfg.scratch_pages;
                        ctx.overwrite_anon(proc, scratch.offset(page))?;
                    }
                    self.scratch_cursor = (self.scratch_cursor
                        + self.cfg.scratch_touches_per_chunk)
                        % self.cfg.scratch_pages.max(1);
                }
                ctx.compute(self.cfg.map_cpu_per_page * count);

                if self.in_pos == self.cfg.input_pages {
                    self.phase = Phase::Reduce { pos: 0 };
                }
                Ok(StepOutcome::Running)
            }
            Phase::Reduce { pos } => {
                // One full sweep over the table to aggregate.
                let (proc, table) = self.proc.expect("setup ran");
                let len = self.cfg.table_pages;
                let count = self.cfg.reduce_chunk.min(len.saturating_sub(pos));
                for i in 0..count {
                    ctx.touch_anon(proc, table.offset(pos + i), false)?;
                }
                ctx.compute(self.cfg.reduce_cpu_per_page * count.max(1));
                let next = pos + count;
                if count == 0 || next >= len {
                    self.phase = Phase::Output { pos: 0 };
                } else {
                    self.phase = Phase::Reduce { pos: next };
                }
                Ok(StepOutcome::Running)
            }
            Phase::Output { pos } => {
                let output = self.output.expect("setup ran");
                let count = 64.min(self.cfg.output_pages - pos);
                ctx.write_file(output, pos, count)?;
                let next = pos + count;
                if next == self.cfg.output_pages {
                    ctx.sync();
                    Ok(StepOutcome::Done)
                } else {
                    self.phase = Phase::Output { pos: next };
                    Ok(StepOutcome::Running)
                }
            }
        }
    }

    fn name(&self) -> &str {
        "mapreduce-wordcount"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{SimDuration as D, SimTime};
    use vswap_core::{Machine, MachineConfig, SwapPolicy};
    use vswap_guestos::GuestSpec;
    use vswap_hostos::HostSpec;
    use vswap_hypervisor::{BalloonPolicy, VmSpec};

    fn small_cfg(seed: u64) -> MapReduceConfig {
        MapReduceConfig {
            input_pages: MemBytes::from_mb(8).pages(),
            table_pages: MemBytes::from_mb(16).pages(),
            chunk_pages: 32,
            inserts_per_chunk: 96,
            scratch_pages: MemBytes::from_mb(2).pages(),
            scratch_touches_per_chunk: 32,
            output_pages: MemBytes::from_mb(1).pages(),
            map_cpu_per_page: D::from_micros(200),
            reduce_cpu_per_page: D::from_micros(20),
            reduce_chunk: 512,
            seed,
        }
    }

    fn guest_spec(name: &str) -> VmSpec {
        VmSpec::linux(name, MemBytes::from_mb(48), MemBytes::from_mb(48)).with_vcpus(2).with_guest(
            GuestSpec {
                memory: MemBytes::from_mb(48),
                disk: MemBytes::from_mb(256),
                swap: MemBytes::from_mb(48),
                kernel_pages: MemBytes::from_mb(2).pages(),
                boot_file_pages: MemBytes::from_mb(4).pages(),
                boot_anon_pages: MemBytes::from_mb(2).pages(),
                ..GuestSpec::linux_default()
            },
        )
    }

    /// Three phased guests on a host that holds only two of them.
    fn run_phased(policy: SwapPolicy, auto_balloon: bool) -> vswap_core::RunReport {
        let host = HostSpec {
            dram: MemBytes::from_mb(72),
            disk_pages: MemBytes::from_gb(1).pages(),
            swap_pages: MemBytes::from_mb(128).pages(),
            hypervisor_code_pages: 16,
            ..HostSpec::paper_testbed()
        };
        let mut cfg = MachineConfig::preset(policy).with_host(host);
        if auto_balloon {
            // Sample fast so the manager visibly acts within the short
            // test run (the paper-scale benches use the default 1 s).
            cfg = cfg.with_auto_balloon(BalloonPolicy {
                interval: D::from_millis(250),
                ..BalloonPolicy::default()
            });
        }
        let mut m = Machine::new(cfg).unwrap();
        for i in 0..3u32 {
            let vm = m.add_vm(guest_spec(&format!("g{i}"))).unwrap();
            m.launch_at(
                vm,
                Box::new(MapReduce::new(small_cfg(i as u64))),
                SimTime::ZERO + D::from_secs(2 * u64::from(i)),
            );
        }
        let report = m.run();
        m.host().audit().unwrap();
        report
    }

    #[test]
    fn phased_guests_all_complete() {
        let report = run_phased(SwapPolicy::Baseline, false);
        assert_eq!(report.workloads.len(), 3);
        assert_eq!(report.kill_count(), 0);
        assert!(report.mean_runtime_secs().unwrap() > 0.0);
    }

    #[test]
    fn vswapper_beats_baseline_under_overcommit() {
        let base = run_phased(SwapPolicy::Baseline, false).mean_runtime_secs().unwrap();
        let vswap = run_phased(SwapPolicy::Vswapper, false).mean_runtime_secs().unwrap();
        assert!(vswap < base, "vswapper mean ({vswap:.2}s) must beat baseline mean ({base:.2}s)");
    }

    #[test]
    fn auto_ballooning_runs_and_adjusts() {
        let report = run_phased(SwapPolicy::BalloonVswapper, true);
        assert_eq!(report.workloads.len(), 3);
        // Host pressure must have made the manager inflate some balloon.
        assert!(
            report.workloads.iter().any(|w| w.guest_stats.get("guest_balloon_pages") > 0)
                || report.kill_count() > 0,
            "dynamic ballooning must visibly act"
        );
    }
}
