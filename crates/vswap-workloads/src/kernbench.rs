//! The Kernbench workload (Figure 12): building the Linux kernel.
//!
//! What the memory system sees: a stream of compile jobs, each reading a
//! small slice of a large cached source tree, spawning a short-lived
//! compiler process whose address space is allocated (zeroed!) at birth
//! and freed at exit, and appending a small object file. The constant
//! page-zeroing over recycled frames is what feeds the False Reads
//! Preventer its 80 K remaps (Figure 12b).

use sim_core::SimDuration;
use vswap_guestos::{FileId, GuestCtx, GuestError, GuestProgram, StepOutcome};
use vswap_mem::MemBytes;

/// Tuning of the Kernbench analogue.
#[derive(Debug, Clone)]
pub struct KernbenchConfig {
    /// Number of compile jobs (one per translation unit).
    pub jobs: u64,
    /// Source-tree size in pages (cached by the guest across jobs).
    pub source_pages: u64,
    /// Source pages read per job.
    pub read_pages_per_job: u64,
    /// Compiler process image in pages (allocated and zeroed per job).
    pub anon_pages_per_job: u64,
    /// Object-file output pages per job.
    pub output_pages_per_job: u64,
    /// Pure compile CPU time per job.
    pub cpu_per_job: SimDuration,
}

impl Default for KernbenchConfig {
    fn default() -> Self {
        KernbenchConfig {
            jobs: 3000,
            source_pages: MemBytes::from_mb(128).pages(),
            read_pages_per_job: 16,
            anon_pages_per_job: 512,
            output_pages_per_job: 4,
            cpu_per_job: SimDuration::from_millis(350),
        }
    }
}

/// The Kernbench analogue. See the module docs.
#[derive(Debug)]
pub struct Kernbench {
    cfg: KernbenchConfig,
    source: Option<FileId>,
    output: Option<FileId>,
    job: u64,
    src_cursor: u64,
    out_cursor: u64,
}

impl Kernbench {
    /// Creates the workload with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if any size in the config is zero.
    pub fn new(cfg: KernbenchConfig) -> Self {
        assert!(cfg.jobs > 0 && cfg.source_pages > 0 && cfg.anon_pages_per_job > 0);
        Kernbench { cfg, source: None, output: None, job: 0, src_cursor: 0, out_cursor: 0 }
    }

    /// The workload at the paper's scale (~20 simulated minutes).
    pub fn paper_default() -> Self {
        Kernbench::new(KernbenchConfig::default())
    }
}

impl GuestProgram for Kernbench {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
        let source = match self.source {
            Some(f) => f,
            None => {
                let src = ctx.create_file(self.cfg.source_pages)?;
                // Object files accumulate; bound the file by recycling.
                let out = ctx.create_file(
                    (self.cfg.output_pages_per_job * self.cfg.jobs)
                        .min(MemBytes::from_mb(64).pages()),
                )?;
                self.source = Some(src);
                self.output = Some(out);
                return Ok(StepOutcome::Running);
            }
        };
        let output = self.output.expect("setup ran");

        // Read this job's source slice (wrapping over the tree).
        let read = self.cfg.read_pages_per_job.min(self.cfg.source_pages - self.src_cursor);
        ctx.read_file(source, self.src_cursor, read)?;
        self.src_cursor = (self.src_cursor + read) % self.cfg.source_pages;

        // Fork the compiler: a fresh address space, zeroed page by page.
        let cc = ctx.spawn_process();
        let image = ctx.alloc_anon(cc, self.cfg.anon_pages_per_job)?;
        for i in 0..self.cfg.anon_pages_per_job {
            ctx.touch_anon(cc, image.offset(i), true)?;
        }
        ctx.compute(self.cfg.cpu_per_job);

        // Emit the object file.
        let out_len = ctx.file_len(output);
        let n = self.cfg.output_pages_per_job.min(out_len - self.out_cursor);
        ctx.write_file(output, self.out_cursor, n)?;
        self.out_cursor = (self.out_cursor + n) % out_len;

        // The compiler exits; its memory returns to the free pool.
        ctx.free_anon(cc, image, self.cfg.anon_pages_per_job)?;

        self.job += 1;
        if self.job == self.cfg.jobs {
            ctx.sync();
            Ok(StepOutcome::Done)
        } else {
            Ok(StepOutcome::Running)
        }
    }

    fn name(&self) -> &str {
        "kernbench"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vswap_core::{Machine, MachineConfig, SwapPolicy};
    use vswap_guestos::GuestSpec;
    use vswap_hostos::HostSpec;
    use vswap_hypervisor::VmSpec;

    fn small_cfg() -> KernbenchConfig {
        KernbenchConfig {
            jobs: 80,
            // The source tree rivals guest memory, as a kernel checkout
            // rivals a 512 MiB guest: the cache must churn.
            source_pages: MemBytes::from_mb(12).pages(),
            read_pages_per_job: 32,
            anon_pages_per_job: 128,
            output_pages_per_job: 2,
            cpu_per_job: SimDuration::from_millis(20),
        }
    }

    fn run(policy: SwapPolicy, actual_mb: u64) -> vswap_core::RunReport {
        let host = HostSpec {
            dram: MemBytes::from_mb(96),
            disk_pages: MemBytes::from_mb(512).pages(),
            swap_pages: MemBytes::from_mb(96).pages(),
            hypervisor_code_pages: 16,
            ..HostSpec::paper_testbed()
        };
        let mut m = Machine::new(MachineConfig::preset(policy).with_host(host)).unwrap();
        let spec = VmSpec::linux("g", MemBytes::from_mb(16), MemBytes::from_mb(actual_mb))
            .with_guest(GuestSpec {
                memory: MemBytes::from_mb(16),
                disk: MemBytes::from_mb(256),
                swap: MemBytes::from_mb(16),
                kernel_pages: MemBytes::from_mb(2).pages(),
                boot_file_pages: MemBytes::from_mb(4).pages(),
                boot_anon_pages: MemBytes::from_mb(2).pages(),
                ..GuestSpec::linux_default()
            });
        let vm = m.add_vm(spec).unwrap();
        m.launch(vm, Box::new(Kernbench::new(small_cfg())));
        let report = m.run();
        m.host().audit().unwrap();
        report
    }

    #[test]
    fn completes_on_all_policies_even_squeezed() {
        // Kernbench's per-job working set is small: every policy,
        // including ballooning, survives the squeeze (Figure 12 has no
        // missing bars).
        for policy in SwapPolicy::ALL {
            let report = run(policy, 6);
            assert_eq!(report.kill_count(), 0, "{policy} must not kill kernbench");
            assert!(report.workloads.last().unwrap().completed());
        }
    }

    #[test]
    fn preventer_remaps_appear_under_pressure() {
        let report = run(SwapPolicy::Vswapper, 6);
        assert!(
            report.preventer.get("preventer_remaps") > 0,
            "compiler-image zeroing must produce remaps (Figure 12b)"
        );
    }

    #[test]
    fn pressure_slowdown_is_modest_relative_to_vswapper() {
        // The paper reports ~15% baseline vs ~5% balloon overhead at
        // moderate squeeze; at minimum the ordering must hold.
        let base = run(SwapPolicy::Baseline, 6).workloads.last().unwrap().runtime_secs();
        let vswap = run(SwapPolicy::Vswapper, 6).workloads.last().unwrap().runtime_secs();
        assert!(
            vswap <= base * 1.02,
            "vswapper ({vswap:.2}s) must not lose to baseline ({base:.2}s)"
        );
    }
}
