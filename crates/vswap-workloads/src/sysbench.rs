//! The Sysbench sequential-file-read workload (Figures 3 and 9,
//! Table 2, §5.4).
//!
//! Sysbench's `fileio` benchmark first *prepares* a test file (writing it
//! through the page cache) and then reads it sequentially. The paper runs
//! the read phase iteratively in a guest that believes it has 512 MB
//! while the host grants it only 100 MB.

use sim_core::SimDuration;
use vswap_guestos::{GuestCtx, GuestError, GuestProgram, StepOutcome};

use crate::shared::SharedFile;

/// Pages processed per scheduler step.
const CHUNK_PAGES: u64 = 64;

/// Per-page CPU cost of the benchmark's checksumming read loop.
const READ_CPU_PER_PAGE: SimDuration = SimDuration::from_micros(20);

/// Per-page CPU cost of generating and writing file content.
const WRITE_CPU_PER_PAGE: SimDuration = SimDuration::from_micros(22);

/// `sysbench fileio prepare`: creates the test file and writes it
/// through the page cache, then syncs.
#[derive(Debug)]
pub struct SysbenchPrepare {
    pages: u64,
    file: SharedFile,
    pos: u64,
}

impl SysbenchPrepare {
    /// Prepares a `pages`-page test file, binding its identity to
    /// `file`.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(pages: u64, file: SharedFile) -> Self {
        assert!(pages > 0, "file must be non-empty");
        SysbenchPrepare { pages, file, pos: 0 }
    }
}

impl GuestProgram for SysbenchPrepare {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
        if self.file.get().is_none() {
            let f = ctx.create_file(self.pages)?;
            self.file.set(f);
        }
        let file = self.file.expect_bound();
        let count = CHUNK_PAGES.min(self.pages - self.pos);
        ctx.write_file(file, self.pos, count)?;
        ctx.compute(WRITE_CPU_PER_PAGE * count);
        self.pos += count;
        if self.pos == self.pages {
            ctx.sync();
            Ok(StepOutcome::Done)
        } else {
            Ok(StepOutcome::Running)
        }
    }

    fn name(&self) -> &str {
        "sysbench-prepare"
    }
}

/// One iteration of `sysbench fileio seqrd`: a full sequential read of
/// the prepared file.
#[derive(Debug)]
pub struct SysbenchRead {
    file: SharedFile,
    pos: u64,
    len: Option<u64>,
}

impl SysbenchRead {
    /// Reads the file bound to `file` once, start to end.
    pub fn new(file: SharedFile) -> Self {
        SysbenchRead { file, pos: 0, len: None }
    }
}

impl GuestProgram for SysbenchRead {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
        let file = self.file.expect_bound();
        let len = *self.len.get_or_insert_with(|| ctx.file_len(file));
        let count = CHUNK_PAGES.min(len - self.pos);
        ctx.read_file(file, self.pos, count)?;
        ctx.compute(READ_CPU_PER_PAGE * count);
        self.pos += count;
        if self.pos == len {
            Ok(StepOutcome::Done)
        } else {
            Ok(StepOutcome::Running)
        }
    }

    fn name(&self) -> &str {
        "sysbench-seqrd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vswap_core::{Machine, MachineConfig, SwapPolicy};
    use vswap_guestos::GuestSpec;
    use vswap_hostos::HostSpec;
    use vswap_hypervisor::VmSpec;
    use vswap_mem::MemBytes;

    fn machine(policy: SwapPolicy) -> (Machine, vswap_core::VmHandle) {
        let host = HostSpec {
            dram: MemBytes::from_mb(64),
            disk_pages: MemBytes::from_mb(512).pages(),
            swap_pages: MemBytes::from_mb(64).pages(),
            hypervisor_code_pages: 16,
            ..HostSpec::paper_testbed()
        };
        let mut m = Machine::new(MachineConfig::preset(policy).with_host(host)).unwrap();
        let spec =
            VmSpec::linux("g", MemBytes::from_mb(32), MemBytes::from_mb(8)).with_guest(GuestSpec {
                memory: MemBytes::from_mb(32),
                disk: MemBytes::from_mb(256),
                swap: MemBytes::from_mb(32),
                kernel_pages: MemBytes::from_mb(2).pages(),
                boot_file_pages: MemBytes::from_mb(4).pages(),
                boot_anon_pages: MemBytes::from_mb(2).pages(),
                ..GuestSpec::linux_default()
            });
        let vm = m.add_vm(spec).unwrap();
        (m, vm)
    }

    #[test]
    fn prepare_then_iterated_reads() {
        let (mut m, vm) = machine(SwapPolicy::Baseline);
        let shared = SharedFile::new();
        m.launch(vm, Box::new(SysbenchPrepare::new(MemBytes::from_mb(12).pages(), shared.clone())));
        let _ = m.run();
        assert!(shared.get().is_some());
        let mut runtimes = Vec::new();
        for _ in 0..3 {
            m.launch(vm, Box::new(SysbenchRead::new(shared.clone())));
            let report = m.run();
            let last = report.workloads.last().unwrap();
            assert!(last.completed());
            runtimes.push(last.runtime_secs());
        }
        assert!(runtimes.iter().all(|&r| r > 0.0));
        m.host().audit().unwrap();
    }

    #[test]
    fn vswapper_flattens_iteration_times() {
        // Under a tight limit, baseline iterations swap heavily; the
        // vswapper iterations stream from the image and stay fast.
        let mut totals = Vec::new();
        for policy in [SwapPolicy::Baseline, SwapPolicy::Vswapper] {
            let (mut m, vm) = machine(policy);
            let shared = SharedFile::new();
            m.launch(
                vm,
                Box::new(SysbenchPrepare::new(MemBytes::from_mb(12).pages(), shared.clone())),
            );
            let _ = m.run();
            let mut total = 0.0;
            for _ in 0..3 {
                m.launch(vm, Box::new(SysbenchRead::new(shared.clone())));
                let report = m.run();
                total += report.workloads.last().unwrap().runtime_secs();
            }
            totals.push(total);
            m.host().audit().unwrap();
        }
        assert!(
            totals[1] < totals[0],
            "vswapper ({:.3}s) must beat baseline ({:.3}s)",
            totals[1],
            totals[0]
        );
    }
}
