//! The pbzip2 workload (Figures 5 and 11): parallel block compression of
//! the Linux kernel source tree.
//!
//! What the memory system sees: a long sequential scan of a large source
//! file (which the guest happily caches in full, believing memory is
//! plentiful), a *hot* anonymous working set of compression dictionaries
//! and block buffers that is re-touched throughout, and a steady stream
//! of compressed output written through the page cache.

use sim_core::SimDuration;
use vswap_guestos::{FileId, GuestCtx, GuestError, GuestProgram, ProcId, StepOutcome};
use vswap_mem::{MemBytes, Vpn};

/// Tuning of the pbzip2 analogue.
#[derive(Debug, Clone)]
pub struct Pbzip2Config {
    /// Source tree size in pages (default 384 MiB — a checked-out kernel).
    pub source_pages: u64,
    /// Compressed output size in pages (default source / 4).
    pub output_pages: u64,
    /// Hot anonymous working set in pages (dictionaries, block buffers;
    /// default 96 MiB).
    pub hot_pages: u64,
    /// Source pages consumed per block step (default 32 = 128 KiB).
    pub block_pages: u64,
    /// Hot pages re-touched per block step.
    pub hot_touches_per_block: u64,
    /// CPU cost of compressing one source page (bzip2 on one VCPU).
    pub compress_cpu_per_page: SimDuration,
}

impl Default for Pbzip2Config {
    fn default() -> Self {
        let source_pages = MemBytes::from_mb(384).pages();
        Pbzip2Config {
            source_pages,
            output_pages: source_pages / 4,
            hot_pages: MemBytes::from_mb(96).pages(),
            block_pages: 32,
            hot_touches_per_block: 128,
            compress_cpu_per_page: SimDuration::from_micros(1000),
        }
    }
}

#[derive(Debug)]
enum Phase {
    Setup,
    Compress,
}

/// The pbzip2 analogue. See the module docs.
#[derive(Debug)]
pub struct Pbzip2 {
    cfg: Pbzip2Config,
    phase: Phase,
    source: Option<FileId>,
    output: Option<FileId>,
    proc: Option<(ProcId, Vpn)>,
    src_pos: u64,
    out_pos: u64,
    hot_cursor: u64,
}

impl Pbzip2 {
    /// Creates the workload with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if any size in the config is zero.
    pub fn new(cfg: Pbzip2Config) -> Self {
        assert!(cfg.source_pages > 0 && cfg.hot_pages > 0 && cfg.block_pages > 0);
        assert!(cfg.output_pages > 0);
        Pbzip2 {
            cfg,
            phase: Phase::Setup,
            source: None,
            output: None,
            proc: None,
            src_pos: 0,
            out_pos: 0,
            hot_cursor: 0,
        }
    }

    /// The workload at the paper's scale.
    pub fn paper_default() -> Self {
        Pbzip2::new(Pbzip2Config::default())
    }
}

impl GuestProgram for Pbzip2 {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
        match self.phase {
            Phase::Setup => {
                let source = ctx.create_file(self.cfg.source_pages)?;
                let output = ctx.create_file(self.cfg.output_pages)?;
                let proc = ctx.spawn_process();
                let hot = ctx.alloc_anon(proc, self.cfg.hot_pages)?;
                self.source = Some(source);
                self.output = Some(output);
                self.proc = Some((proc, hot));
                self.phase = Phase::Compress;
                Ok(StepOutcome::Running)
            }
            Phase::Compress => {
                let source = self.source.expect("setup ran");
                let output = self.output.expect("setup ran");
                let (proc, hot) = self.proc.expect("setup ran");

                // Read the next input block (the guest caches it).
                let count = self.cfg.block_pages.min(self.cfg.source_pages - self.src_pos);
                ctx.read_file(source, self.src_pos, count)?;
                self.src_pos += count;

                // Compression: re-touch the hot dictionaries/buffers.
                for i in 0..self.cfg.hot_touches_per_block {
                    let page = (self.hot_cursor + i) % self.cfg.hot_pages;
                    let write = i % 2 == 0;
                    ctx.touch_anon(proc, hot.offset(page), write)?;
                }
                self.hot_cursor =
                    (self.hot_cursor + self.cfg.hot_touches_per_block) % self.cfg.hot_pages;
                ctx.compute(self.cfg.compress_cpu_per_page * count);

                // Emit compressed output at one quarter the input rate.
                let out_target = (self.src_pos * self.cfg.output_pages) / self.cfg.source_pages;
                if out_target > self.out_pos {
                    let n = out_target - self.out_pos;
                    ctx.write_file(output, self.out_pos, n)?;
                    self.out_pos = out_target;
                }

                if self.src_pos == self.cfg.source_pages {
                    ctx.sync();
                    Ok(StepOutcome::Done)
                } else {
                    Ok(StepOutcome::Running)
                }
            }
        }
    }

    fn name(&self) -> &str {
        "pbzip2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vswap_core::{Machine, MachineConfig, SwapPolicy};
    use vswap_guestos::GuestSpec;
    use vswap_hostos::HostSpec;
    use vswap_hypervisor::VmSpec;

    fn small_cfg() -> Pbzip2Config {
        Pbzip2Config {
            source_pages: MemBytes::from_mb(16).pages(),
            output_pages: MemBytes::from_mb(4).pages(),
            hot_pages: MemBytes::from_mb(6).pages(),
            block_pages: 16,
            hot_touches_per_block: 64,
            compress_cpu_per_page: SimDuration::from_micros(200),
        }
    }

    fn run(policy: SwapPolicy, actual_mb: u64) -> vswap_core::RunReport {
        let host = HostSpec {
            dram: MemBytes::from_mb(96),
            disk_pages: MemBytes::from_mb(512).pages(),
            swap_pages: MemBytes::from_mb(96).pages(),
            hypervisor_code_pages: 16,
            ..HostSpec::paper_testbed()
        };
        let mut m = Machine::new(MachineConfig::preset(policy).with_host(host)).unwrap();
        let spec = VmSpec::linux("g", MemBytes::from_mb(48), MemBytes::from_mb(actual_mb))
            .with_guest(GuestSpec {
                memory: MemBytes::from_mb(48),
                disk: MemBytes::from_mb(256),
                swap: MemBytes::from_mb(48),
                kernel_pages: MemBytes::from_mb(2).pages(),
                boot_file_pages: MemBytes::from_mb(4).pages(),
                boot_anon_pages: MemBytes::from_mb(2).pages(),
                ..GuestSpec::linux_default()
            });
        let vm = m.add_vm(spec).unwrap();
        m.launch(vm, Box::new(Pbzip2::new(small_cfg())));
        let report = m.run();
        m.host().audit().unwrap();
        report
    }

    #[test]
    fn completes_with_plentiful_memory() {
        let report = run(SwapPolicy::Baseline, 48);
        assert_eq!(report.kill_count(), 0);
        assert!(report.workloads.last().unwrap().completed());
    }

    #[test]
    fn memory_pressure_slows_baseline_more_than_vswapper() {
        let base = run(SwapPolicy::Baseline, 12);
        let vswap = run(SwapPolicy::Vswapper, 12);
        let base_rt = base.workloads.last().unwrap().runtime_secs();
        let vswap_rt = vswap.workloads.last().unwrap().runtime_secs();
        assert!(base.workloads.last().unwrap().completed());
        assert!(vswap.workloads.last().unwrap().completed());
        assert!(
            vswap_rt < base_rt,
            "vswapper ({vswap_rt:.2}s) must beat baseline ({base_rt:.2}s) under pressure"
        );
        // VSwapper eliminates the *file-page* share of swap writes
        // (Figure 11b); the anonymous hot set still swaps. At this tiny
        // test scale the anon share dominates, so require a clear
        // reduction rather than elimination.
        assert!(
            vswap.disk.get("disk_swap_sectors_written") * 3
                < base.disk.get("disk_swap_sectors_written").max(1) * 2,
            "vswapper {} vs baseline {}",
            vswap.disk.get("disk_swap_sectors_written"),
            base.disk.get("disk_swap_sectors_written")
        );
    }

    #[test]
    fn hot_set_overflow_under_balloon_kills_the_job() {
        // 12 MiB actual: the static balloon pins 36 MiB, leaving less
        // than the 6 MiB hot set + churn: over-ballooning kills pbzip2
        // (the missing bars of Figure 5).
        let report = run(SwapPolicy::BalloonBaseline, 8);
        assert!(report.kill_count() > 0, "over-ballooning must kill the compressor");
    }

    #[test]
    fn balloon_survives_with_adequate_actual_memory() {
        let report = run(SwapPolicy::BalloonBaseline, 24);
        assert_eq!(report.kill_count(), 0);
    }
}
