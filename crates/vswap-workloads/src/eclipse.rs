//! The DaCapo Eclipse workload (Figures 13 and 15): a JVM-hosted IDE.
//!
//! The paper singles Java out as "an LRU-related pathological case": the
//! garbage collector periodically sweeps the *entire* heap, so when the
//! physical allocation is smaller than the JVM working set, every sweep
//! cycles the whole heap through memory. Between sweeps the workload
//! touches scattered heap pages and reads workspace files.

use sim_core::{DeterministicRng, SimDuration};
use vswap_guestos::{FileId, GuestCtx, GuestError, GuestProgram, ProcId, StepOutcome};
use vswap_mem::{MemBytes, Vpn};

/// Tuning of the Eclipse analogue.
#[derive(Debug, Clone)]
pub struct EclipseConfig {
    /// Garbage-collected heap in pages (the paper ran OpenJDK with a
    /// 128 MB heap) — the region full GC sweeps.
    pub heap_pages: u64,
    /// The JVM's non-heap resident set in pages: metaspace, JIT code
    /// caches, mapped jars. Touched at startup and sporadically after —
    /// cold enough for the host to page, unlike the swept heap.
    pub static_pages: u64,
    /// Random static (non-heap) pages touched per work unit.
    pub static_touches_per_unit: u64,
    /// Workspace files read during the run, in pages.
    pub workspace_pages: u64,
    /// Work units to execute.
    pub units: u64,
    /// Scattered heap pages touched per unit.
    pub touches_per_unit: u64,
    /// Workspace pages read per unit.
    pub reads_per_unit: u64,
    /// Workspace pages written (saved) per unit — the dirty cache pages
    /// the Mapper must *not* track (Figure 15).
    pub writes_per_unit: u64,
    /// A full-heap GC sweep runs every this many units.
    pub gc_interval: u64,
    /// Heap pages swept per GC step (bounds step size).
    pub gc_chunk: u64,
    /// CPU time per work unit.
    pub cpu_per_unit: SimDuration,
    /// Deterministic seed for the scattered touches.
    pub seed: u64,
}

impl Default for EclipseConfig {
    fn default() -> Self {
        EclipseConfig {
            heap_pages: MemBytes::from_mb(128).pages(),
            static_pages: MemBytes::from_mb(232).pages(),
            static_touches_per_unit: 6,
            workspace_pages: MemBytes::from_mb(64).pages(),
            units: 600,
            touches_per_unit: 192,
            reads_per_unit: 8,
            writes_per_unit: 2,
            gc_interval: 30,
            gc_chunk: 2048,
            cpu_per_unit: SimDuration::from_millis(180),
            seed: 0x0ec1_195e,
        }
    }
}

#[derive(Debug)]
enum Phase {
    Setup,
    /// Allocating (and thereby zeroing) the heap, one chunk at a time.
    HeapWarmup {
        pos: u64,
    },
    Work,
    GcSweep {
        pos: u64,
    },
}

/// The Eclipse analogue. See the module docs.
#[derive(Debug)]
pub struct Eclipse {
    cfg: EclipseConfig,
    phase: Phase,
    workspace: Option<FileId>,
    jvm: Option<(ProcId, Vpn)>,
    statics: Option<Vpn>,
    unit: u64,
    ws_cursor: u64,
    rng: DeterministicRng,
}

impl Eclipse {
    /// Creates the workload with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if any size in the config is zero.
    pub fn new(cfg: EclipseConfig) -> Self {
        assert!(cfg.heap_pages > 0 && cfg.units > 0 && cfg.gc_interval > 0 && cfg.gc_chunk > 0);
        let rng = DeterministicRng::seed_from(cfg.seed);
        Eclipse {
            cfg,
            phase: Phase::Setup,
            workspace: None,
            jvm: None,
            statics: None,
            unit: 0,
            ws_cursor: 0,
            rng,
        }
    }

    /// The workload at the paper's scale.
    pub fn paper_default() -> Self {
        Eclipse::new(EclipseConfig::default())
    }
}

impl GuestProgram for Eclipse {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
        match self.phase {
            Phase::Setup => {
                let ws = ctx.create_file(self.cfg.workspace_pages)?;
                let jvm = ctx.spawn_process();
                let heap = ctx.alloc_anon(jvm, self.cfg.heap_pages)?;
                let statics = ctx.alloc_anon(jvm, self.cfg.static_pages.max(1))?;
                self.workspace = Some(ws);
                self.jvm = Some((jvm, heap));
                self.statics = Some(statics);
                self.phase = Phase::HeapWarmup { pos: 0 };
                Ok(StepOutcome::Running)
            }
            Phase::HeapWarmup { pos } => {
                // JVM startup: materialize heap then statics (metaspace,
                // JIT output, mapped jars) — the memory-demand spike.
                let (jvm, heap) = self.jvm.expect("setup ran");
                let statics = self.statics.expect("setup ran");
                let total = self.cfg.heap_pages + self.cfg.static_pages;
                let count = self.cfg.gc_chunk.min(total - pos);
                for i in 0..count {
                    let off = pos + i;
                    if off < self.cfg.heap_pages {
                        ctx.touch_anon(jvm, heap.offset(off), true)?;
                    } else {
                        ctx.touch_anon(jvm, statics.offset(off - self.cfg.heap_pages), true)?;
                    }
                }
                let next = pos + count;
                if next == total {
                    self.phase = Phase::Work;
                } else {
                    self.phase = Phase::HeapWarmup { pos: next };
                }
                Ok(StepOutcome::Running)
            }
            Phase::Work => {
                let (jvm, heap) = self.jvm.expect("setup ran");
                let statics = self.statics.expect("setup ran");
                let ws = self.workspace.expect("setup ran");
                for i in 0..self.cfg.touches_per_unit {
                    let page = self.rng.below(self.cfg.heap_pages);
                    ctx.touch_anon(jvm, heap.offset(page), i % 3 == 0)?;
                }
                for _ in 0..self.cfg.static_touches_per_unit.min(self.cfg.static_pages) {
                    let page = self.rng.below(self.cfg.static_pages.max(1));
                    ctx.touch_anon(jvm, statics.offset(page), false)?;
                }
                let n = self.cfg.reads_per_unit.min(self.cfg.workspace_pages - self.ws_cursor);
                ctx.read_file(ws, self.ws_cursor, n)?;
                let w = self.cfg.writes_per_unit.min(n);
                if w > 0 {
                    ctx.write_file(ws, self.ws_cursor, w)?;
                }
                self.ws_cursor = (self.ws_cursor + n) % self.cfg.workspace_pages;
                ctx.compute(self.cfg.cpu_per_unit);
                self.unit += 1;
                if self.unit == self.cfg.units {
                    Ok(StepOutcome::Done)
                } else if self.unit % self.cfg.gc_interval == 0 {
                    self.phase = Phase::GcSweep { pos: 0 };
                    Ok(StepOutcome::Running)
                } else {
                    Ok(StepOutcome::Running)
                }
            }
            Phase::GcSweep { pos } => {
                // The collector walks the whole heap — the LRU killer.
                let (jvm, heap) = self.jvm.expect("setup ran");
                let count = self.cfg.gc_chunk.min(self.cfg.heap_pages - pos);
                for i in 0..count {
                    ctx.touch_anon(jvm, heap.offset(pos + i), false)?;
                }
                ctx.compute(SimDuration::from_micros(1) * count);
                let next = pos + count;
                if next == self.cfg.heap_pages {
                    self.phase = Phase::Work;
                } else {
                    self.phase = Phase::GcSweep { pos: next };
                }
                Ok(StepOutcome::Running)
            }
        }
    }

    fn name(&self) -> &str {
        "eclipse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vswap_core::{Machine, MachineConfig, SwapPolicy};
    use vswap_guestos::GuestSpec;
    use vswap_hostos::HostSpec;
    use vswap_hypervisor::VmSpec;

    fn small_cfg() -> EclipseConfig {
        EclipseConfig {
            heap_pages: MemBytes::from_mb(8).pages(),
            static_pages: MemBytes::from_mb(12).pages(),
            static_touches_per_unit: 2,
            workspace_pages: MemBytes::from_mb(8).pages(),
            units: 40,
            touches_per_unit: 96,
            reads_per_unit: 4,
            writes_per_unit: 1,
            gc_interval: 10,
            gc_chunk: 512,
            cpu_per_unit: SimDuration::from_millis(20),
            seed: 7,
        }
    }

    fn run(policy: SwapPolicy, actual_mb: u64) -> vswap_core::RunReport {
        let host = HostSpec {
            dram: MemBytes::from_mb(96),
            disk_pages: MemBytes::from_mb(512).pages(),
            swap_pages: MemBytes::from_mb(96).pages(),
            hypervisor_code_pages: 16,
            ..HostSpec::paper_testbed()
        };
        let mut m = Machine::new(MachineConfig::preset(policy).with_host(host)).unwrap();
        let spec = VmSpec::linux("g", MemBytes::from_mb(48), MemBytes::from_mb(actual_mb))
            .with_guest(GuestSpec {
                memory: MemBytes::from_mb(48),
                disk: MemBytes::from_mb(256),
                swap: MemBytes::from_mb(48),
                kernel_pages: MemBytes::from_mb(2).pages(),
                boot_file_pages: MemBytes::from_mb(4).pages(),
                boot_anon_pages: MemBytes::from_mb(2).pages(),
                ..GuestSpec::linux_default()
            });
        let vm = m.add_vm(spec).unwrap();
        m.launch(vm, Box::new(Eclipse::new(small_cfg())));
        let report = m.run();
        m.host().audit().unwrap();
        report
    }

    #[test]
    fn completes_with_plentiful_memory() {
        let report = run(SwapPolicy::Baseline, 48);
        assert_eq!(report.kill_count(), 0);
    }

    #[test]
    fn uncooperative_swapping_never_kills_the_jvm() {
        // Baseline/vswapper squeeze the guest without its knowledge: slow,
        // but alive (Figure 13: those lines have every point).
        for policy in [SwapPolicy::Baseline, SwapPolicy::MapperOnly, SwapPolicy::Vswapper] {
            let report = run(policy, 10);
            assert_eq!(report.kill_count(), 0, "{policy} must not kill eclipse");
        }
    }

    #[test]
    fn deep_balloon_squeeze_kills_the_jvm() {
        // The balloon squeezes below the JVM working set: Eclipse dies
        // (Figure 13: the balloon line stops below 448 MB).
        let report = run(SwapPolicy::BalloonBaseline, 10);
        assert!(report.kill_count() > 0, "over-ballooning must kill eclipse");
    }

    #[test]
    fn balloon_survives_mild_squeeze() {
        let report = run(SwapPolicy::BalloonBaseline, 36);
        assert_eq!(report.kill_count(), 0);
    }
}
