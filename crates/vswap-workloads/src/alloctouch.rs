//! The false-reads microbenchmark (§3.1, Figure 10): fork a process that
//! allocates and sequentially accesses a block of anonymous memory.
//!
//! Every page the new process touches must first be zeroed by the guest
//! kernel — a full-page overwrite of a recycled frame the host may have
//! swapped out, i.e. exactly one potential false swap read per page.

use sim_core::SimDuration;
use vswap_guestos::{GuestCtx, GuestError, GuestProgram, ProcId, StepOutcome};
use vswap_mem::Vpn;

/// Pages processed per scheduler step.
const CHUNK_PAGES: u64 = 64;

/// Per-page CPU cost of the access loop.
const TOUCH_CPU_PER_PAGE: SimDuration = SimDuration::from_micros(2);

/// How the stream accesses each page after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read each page once (zero-fill then load).
    Read,
    /// Store to part of each page.
    Write,
    /// Overwrite each page wholesale (memset-style).
    Overwrite,
}

/// Fork + allocate + sequentially access `pages` pages of anonymous
/// memory.
#[derive(Debug)]
pub struct AllocStream {
    pages: u64,
    mode: AccessMode,
    proc: Option<(ProcId, Vpn)>,
    pos: u64,
}

impl AllocStream {
    /// Streams over `pages` fresh anonymous pages in the given mode.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(pages: u64, mode: AccessMode) -> Self {
        assert!(pages > 0, "stream must do work");
        AllocStream { pages, mode, proc: None, pos: 0 }
    }
}

impl GuestProgram for AllocStream {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
        let (proc, base) = match self.proc {
            Some(p) => p,
            None => {
                let proc = ctx.spawn_process();
                let base = ctx.alloc_anon(proc, self.pages)?;
                self.proc = Some((proc, base));
                (proc, base)
            }
        };
        let count = CHUNK_PAGES.min(self.pages - self.pos);
        for i in 0..count {
            let vpn = base.offset(self.pos + i);
            match self.mode {
                AccessMode::Read => ctx.touch_anon(proc, vpn, false)?,
                AccessMode::Write => ctx.touch_anon(proc, vpn, true)?,
                AccessMode::Overwrite => ctx.overwrite_anon(proc, vpn)?,
            }
            ctx.compute(TOUCH_CPU_PER_PAGE);
        }
        self.pos += count;
        if self.pos == self.pages {
            Ok(StepOutcome::Done)
        } else {
            Ok(StepOutcome::Running)
        }
    }

    fn name(&self) -> &str {
        "alloc-stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedFile;
    use crate::sysbench::SysbenchPrepare;
    use vswap_core::{Machine, MachineConfig, SwapPolicy};
    use vswap_guestos::GuestSpec;
    use vswap_hostos::HostSpec;
    use vswap_hypervisor::VmSpec;
    use vswap_mem::MemBytes;

    /// Fills the guest cache with file pages so the allocation stream
    /// recycles frames the host had to evict, then streams.
    fn run(policy: SwapPolicy) -> vswap_core::RunReport {
        let host = HostSpec {
            dram: MemBytes::from_mb(64),
            disk_pages: MemBytes::from_mb(512).pages(),
            swap_pages: MemBytes::from_mb(64).pages(),
            hypervisor_code_pages: 16,
            ..HostSpec::paper_testbed()
        };
        let mut m = Machine::new(MachineConfig::preset(policy).with_host(host)).unwrap();
        let spec =
            VmSpec::linux("g", MemBytes::from_mb(32), MemBytes::from_mb(8)).with_guest(GuestSpec {
                memory: MemBytes::from_mb(32),
                disk: MemBytes::from_mb(256),
                swap: MemBytes::from_mb(32),
                kernel_pages: MemBytes::from_mb(2).pages(),
                boot_file_pages: MemBytes::from_mb(4).pages(),
                boot_anon_pages: MemBytes::from_mb(2).pages(),
                ..GuestSpec::linux_default()
            });
        let vm = m.add_vm(spec).unwrap();
        let shared = SharedFile::new();
        m.launch(vm, Box::new(SysbenchPrepare::new(MemBytes::from_mb(26).pages(), shared)));
        let _ = m.run();
        m.launch(vm, Box::new(AllocStream::new(MemBytes::from_mb(10).pages(), AccessMode::Write)));
        let report = m.run();
        m.host().audit().unwrap();
        report
    }

    #[test]
    fn baseline_suffers_false_reads_where_preventer_does_not() {
        let base = run(SwapPolicy::Baseline);
        let vswap = run(SwapPolicy::Vswapper);
        assert!(base.workloads.iter().all(|w| w.killed.is_none()));
        assert!(
            base.host.get("false_swap_reads") > 0,
            "baseline must incur false reads on recycled frames"
        );
        assert_eq!(vswap.host.get("false_swap_reads"), 0, "the Preventer eliminates them");
        assert!(vswap.preventer.get("preventer_remaps") > 0);
        // The runtime gap follows the disk traffic gap.
        let base_rt = base.workloads.last().unwrap().runtime_secs();
        let vswap_rt = vswap.workloads.last().unwrap().runtime_secs();
        assert!(
            vswap_rt < base_rt,
            "vswapper stream ({vswap_rt:.3}s) must beat baseline ({base_rt:.3}s)"
        );
    }

    #[test]
    fn overwrite_mode_is_remapped_wholesale() {
        let host = HostSpec {
            dram: MemBytes::from_mb(64),
            disk_pages: MemBytes::from_mb(512).pages(),
            swap_pages: MemBytes::from_mb(64).pages(),
            hypervisor_code_pages: 16,
            ..HostSpec::paper_testbed()
        };
        let mut m =
            Machine::new(MachineConfig::preset(SwapPolicy::Vswapper).with_host(host)).unwrap();
        let spec =
            VmSpec::linux("g", MemBytes::from_mb(32), MemBytes::from_mb(8)).with_guest(GuestSpec {
                memory: MemBytes::from_mb(32),
                disk: MemBytes::from_mb(256),
                swap: MemBytes::from_mb(32),
                kernel_pages: MemBytes::from_mb(2).pages(),
                boot_file_pages: MemBytes::from_mb(4).pages(),
                boot_anon_pages: MemBytes::from_mb(2).pages(),
                ..GuestSpec::linux_default()
            });
        let vm = m.add_vm(spec).unwrap();
        let shared = SharedFile::new();
        m.launch(vm, Box::new(SysbenchPrepare::new(MemBytes::from_mb(26).pages(), shared)));
        let _ = m.run();
        m.launch(
            vm,
            Box::new(AllocStream::new(MemBytes::from_mb(10).pages(), AccessMode::Overwrite)),
        );
        let report = m.run();
        assert!(report.preventer.get("preventer_remaps") > 0);
        assert_eq!(report.host.get("false_swap_reads"), 0);
        m.host().audit().unwrap();
    }
}
