//! A minimal, dependency-free property-testing shim exposing the subset of
//! the `proptest` crate's API that this workspace uses.
//!
//! The build environment has no access to a crates registry, so the real
//! `proptest` cannot be resolved; this in-tree substitute keeps the
//! workspace's property tests compiling and running. It provides:
//!
//! * the [`strategy::Strategy`] trait with [`strategy::Strategy::prop_map`]
//!   and boxing;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   `any::<T>()`, and [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros;
//! * [`test_runner::TestCaseError`] and
//!   [`test_runner::Config`] (a.k.a. `ProptestConfig`).
//!
//! Cases are generated from a deterministic per-test seed (derived from the
//! test's name), so failures reproduce exactly on re-run. Shrinking is not
//! implemented: a failing case reports its inputs verbatim.

pub mod test_runner {
    /// Why a generated test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the test as a whole fails.
        Fail(String),
        /// The case was rejected (not counted as a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure from any printable reason.
        pub fn fail<R: Into<String>>(reason: R) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection from any printable reason.
        pub fn reject<R: Into<String>>(reason: R) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Runner configuration; only `cases` is meaningful in this shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The deterministic random source driving case generation.
    ///
    /// xoshiro256++ seeded via SplitMix64 — self-contained so the shim has
    /// no dependencies at all.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds a generator; `seed_from_name` is the usual entry point.
        pub fn seed_from(seed: u64) -> Self {
            let mut s = seed;
            TestRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }

        /// Derives a stable seed from a test's name (FNV-1a).
        pub fn seed_from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::seed_from(h)
        }

        /// Draws the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Draws a uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let wide = u128::from(self.next_u64()) * u128::from(bound);
                if (wide as u64) >= threshold {
                    return (wide >> 64) as u64;
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest, generation is a single draw with no
    /// shrinking; `generate` must be deterministic in the RNG stream.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64) - (start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// The strategy `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;

        /// Builds that strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// `any::<bool>()`'s strategy: a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// Full-domain integer strategy backing `any::<uN>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyInt<T>(std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),+) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;

                fn arbitrary() -> AnyInt<$t> {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )+};
    }

    any_int!(u8, u16, u32, u64, usize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors of `element` values with a length in `size`
    /// (half-open, like `1..150`).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, min: size.start, max: size.end }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prop` facade (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniformly chooses between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Declares property tests: each `fn` runs its body against `cases`
/// generated inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                let inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", &$arg));
                        s.push_str("; ");
                    )+
                    s
                };
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), case + 1, config.cases, reason, inputs
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from(1);
        let s = 3..9u64;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::test_runner::TestRng::seed_from(2);
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::test_runner::TestRng::seed_from(3);
        let s = prop::collection::vec(0..10u64, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_smoke(x in 0..100u64, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_ne!(x, 100);
            } else {
                prop_assert_eq!(x, x);
            }
        }
    }
}
