//! Guest processes and their anonymous memory.

use std::fmt;
use vswap_mem::{ContentLabel, Gfn, Vpn};

/// Identifies a guest process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(u32);

impl ProcId {
    /// Creates a process identifier.
    pub const fn new(id: u32) -> Self {
        ProcId(id)
    }

    /// Returns the raw identifier.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// The state of one virtual page of a process's anonymous memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnonPage {
    /// Allocated virtually but never touched.
    #[default]
    Untouched,
    /// Resident in guest-physical memory.
    Resident {
        /// Backing guest frame.
        gfn: Gfn,
        /// Content the process expects to read back.
        label: ContentLabel,
    },
    /// Swapped by the *guest* to its swap partition.
    Swapped {
        /// Guest swap slot.
        slot: u64,
        /// Content the process expects to read back.
        label: ContentLabel,
    },
}

/// One guest process: a growable anonymous address space.
#[derive(Debug, Clone)]
pub(crate) struct Process {
    pub(crate) pages: Vec<AnonPage>,
    pub(crate) alive: bool,
}

impl Process {
    pub(crate) fn new() -> Self {
        Process { pages: Vec::new(), alive: true }
    }

    /// Grows the address space by `count` pages, returning the first new
    /// virtual page number.
    pub(crate) fn grow(&mut self, count: u64) -> Vpn {
        let first = self.pages.len() as u64;
        self.pages.resize(self.pages.len() + count as usize, AnonPage::Untouched);
        Vpn::new(first)
    }

    /// Number of resident pages (the OOM killer's victim metric).
    pub(crate) fn resident_count(&self) -> u64 {
        self.pages.iter().filter(|p| matches!(p, AnonPage::Resident { .. })).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_returns_consecutive_ranges() {
        let mut p = Process::new();
        assert_eq!(p.grow(4), Vpn::new(0));
        assert_eq!(p.grow(2), Vpn::new(4));
        assert_eq!(p.pages.len(), 6);
        assert!(p.pages.iter().all(|pg| *pg == AnonPage::Untouched));
    }

    #[test]
    fn resident_count_counts_only_resident() {
        let mut p = Process::new();
        p.grow(3);
        p.pages[0] = AnonPage::Resident { gfn: Gfn::new(1), label: ContentLabel::ZERO };
        p.pages[1] = AnonPage::Swapped { slot: 0, label: ContentLabel::ZERO };
        assert_eq!(p.resident_count(), 1);
    }
}
