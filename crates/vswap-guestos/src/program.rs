//! The interface between workloads and the guest they run in.
//!
//! A workload is a [`GuestProgram`]: a state machine whose
//! [`step`](GuestProgram::step) is invoked repeatedly by the machine
//! scheduler with a [`GuestCtx`] — a facade over the guest kernel and the
//! virtual hardware that accumulates the simulated time the step consumed.

use crate::fs::FileId;
use crate::hardware::VirtualHardware;
use crate::kernel::{GuestError, GuestKernel};
use crate::process::ProcId;
use sim_core::SimDuration;
use vswap_mem::Vpn;

/// What a program step reports back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More steps to run.
    Running,
    /// The program finished successfully.
    Done,
}

/// A workload running inside a guest.
///
/// Programs must make *bounded* progress per step (roughly milliseconds of
/// simulated time) so the machine scheduler can interleave VMs fairly.
pub trait GuestProgram {
    /// Runs one bounded slice of the workload.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError`] if the guest killed the workload (OOM) or an
    /// operation failed; the scheduler marks the workload as crashed.
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError>;

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

/// The facade a program drives its guest through. Accumulates the
/// simulated time consumed by the step in [`GuestCtx::elapsed`].
///
/// # Examples
///
/// ```
/// use sim_core::SimDuration;
/// use vswap_guestos::{GuestCtx, GuestKernel, GuestSpec, MockHardware};
///
/// let mut guest = GuestKernel::new(GuestSpec::small_test(), 1);
/// let mut hw = MockHardware::new(1024);
/// let file = guest.create_file(8)?;
/// let mut ctx = GuestCtx::new(&mut guest, &mut hw);
/// ctx.read_file(file, 0, 8)?;
/// ctx.compute(SimDuration::from_millis(1));
/// assert!(ctx.elapsed() >= SimDuration::from_millis(1));
/// # Ok::<(), vswap_guestos::GuestError>(())
/// ```
pub struct GuestCtx<'a> {
    kernel: &'a mut GuestKernel,
    hw: &'a mut dyn VirtualHardware,
    elapsed: SimDuration,
}

impl std::fmt::Debug for GuestCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestCtx").field("elapsed", &self.elapsed).finish_non_exhaustive()
    }
}

impl<'a> GuestCtx<'a> {
    /// Pairs a guest kernel with the hardware beneath it.
    pub fn new(kernel: &'a mut GuestKernel, hw: &'a mut dyn VirtualHardware) -> Self {
        GuestCtx { kernel, hw, elapsed: SimDuration::ZERO }
    }

    /// Simulated time consumed so far by this step.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Direct access to the guest kernel (for assertions and probes).
    pub fn kernel(&self) -> &GuestKernel {
        self.kernel
    }

    /// Charges pure CPU time (the computation between memory accesses).
    pub fn compute(&mut self, time: SimDuration) {
        self.elapsed += time;
    }

    /// Creates a file on the guest filesystem.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::FsFull`] if the disk has no room.
    pub fn create_file(&mut self, pages: u64) -> Result<FileId, GuestError> {
        self.kernel.create_file(pages)
    }

    /// Spawns a guest process.
    pub fn spawn_process(&mut self) -> ProcId {
        self.kernel.spawn_process()
    }

    /// True if the process has not been OOM-killed.
    pub fn is_alive(&self, proc: ProcId) -> bool {
        self.kernel.is_alive(proc)
    }

    /// Grows a process's anonymous address space.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::ProcessKilled`] if the process is dead.
    pub fn alloc_anon(&mut self, proc: ProcId, pages: u64) -> Result<Vpn, GuestError> {
        self.kernel.alloc_anon(proc, pages)
    }

    /// Reads file pages through the guest page cache.
    ///
    /// # Errors
    ///
    /// Propagates guest allocation failures.
    pub fn read_file(&mut self, file: FileId, offset: u64, count: u64) -> Result<(), GuestError> {
        let d = self.kernel.read_file(self.hw, file, offset, count)?;
        self.elapsed += d;
        Ok(())
    }

    /// Writes whole file pages through the guest page cache.
    ///
    /// # Errors
    ///
    /// Propagates guest allocation failures.
    pub fn write_file(&mut self, file: FileId, offset: u64, count: u64) -> Result<(), GuestError> {
        let d = self.kernel.write_file(self.hw, file, offset, count)?;
        self.elapsed += d;
        Ok(())
    }

    /// Flushes dirty cache pages (fsync).
    pub fn sync(&mut self) {
        let d = self.kernel.sync(self.hw);
        self.elapsed += d;
    }

    /// Drops the guest page cache (benchmark hygiene between phases).
    pub fn drop_caches(&mut self) {
        let d = self.kernel.drop_caches(self.hw);
        self.elapsed += d;
    }

    /// Touches one anonymous page (read or partial write).
    ///
    /// # Errors
    ///
    /// Propagates OOM kills and allocation failures.
    pub fn touch_anon(&mut self, proc: ProcId, vpn: Vpn, write: bool) -> Result<(), GuestError> {
        let d = self.kernel.touch_anon(self.hw, proc, vpn, write)?;
        self.elapsed += d;
        Ok(())
    }

    /// Overwrites one whole anonymous page (memset/memcpy destination).
    ///
    /// # Errors
    ///
    /// Propagates OOM kills and allocation failures.
    pub fn overwrite_anon(&mut self, proc: ProcId, vpn: Vpn) -> Result<(), GuestError> {
        let d = self.kernel.overwrite_anon(self.hw, proc, vpn)?;
        self.elapsed += d;
        Ok(())
    }

    /// Frees anonymous pages.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::ProcessKilled`] if the process is dead.
    pub fn free_anon(&mut self, proc: ProcId, vpn: Vpn, count: u64) -> Result<(), GuestError> {
        self.kernel.free_anon(proc, vpn, count)
    }

    /// Size of a file in pages.
    pub fn file_len(&self, file: FileId) -> u64 {
        self.kernel.file_len(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::MockHardware;
    use crate::spec::GuestSpec;

    struct CountedReads {
        file: Option<FileId>,
        rounds: u32,
    }

    impl GuestProgram for CountedReads {
        fn step(&mut self, ctx: &mut GuestCtx<'_>) -> Result<StepOutcome, GuestError> {
            let file = match self.file {
                Some(f) => f,
                None => {
                    let f = ctx.create_file(16)?;
                    self.file = Some(f);
                    f
                }
            };
            ctx.read_file(file, 0, 16)?;
            self.rounds -= 1;
            Ok(if self.rounds == 0 { StepOutcome::Done } else { StepOutcome::Running })
        }

        fn name(&self) -> &str {
            "counted-reads"
        }
    }

    #[test]
    fn program_runs_to_completion() {
        let mut guest = GuestKernel::new(GuestSpec::small_test(), 3);
        let mut hw = MockHardware::new(4096);
        let mut prog = CountedReads { file: None, rounds: 3 };
        let mut steps = 0;
        loop {
            let mut ctx = GuestCtx::new(&mut guest, &mut hw);
            match prog.step(&mut ctx).unwrap() {
                StepOutcome::Running => steps += 1,
                StepOutcome::Done => break,
            }
        }
        assert_eq!(steps, 2);
        assert_eq!(prog.name(), "counted-reads");
        // Second and third rounds were cache hits.
        assert!(guest.stats().cache_hits > 0);
        guest.audit().unwrap();
    }

    #[test]
    fn compute_accumulates_elapsed() {
        let mut guest = GuestKernel::new(GuestSpec::small_test(), 3);
        let mut hw = MockHardware::new(64);
        let mut ctx = GuestCtx::new(&mut guest, &mut hw);
        ctx.compute(SimDuration::from_micros(5));
        ctx.compute(SimDuration::from_micros(7));
        assert_eq!(ctx.elapsed(), SimDuration::from_micros(12));
    }
}
