//! The guest kernel: page cache, readahead, anonymous memory, reclaim,
//! balloon driver, and the OOM killer.

use crate::fs::{FileId, FsFullError, GuestFs};
use crate::hardware::VirtualHardware;
use crate::process::{AnonPage, ProcId, Process};
use crate::spec::GuestSpec;
use crate::stats::GuestStats;
use crate::swap::{GuestSlotInfo, GuestSwap};
use sim_core::{DeterministicRng, SimDuration};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use vswap_mem::{ContentLabel, Gfn, IndexList, Vpn};

/// What a guest-physical page is used for, from the guest's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestPageState {
    /// On the guest's free list.
    Free,
    /// Guest kernel text/data; pinned for the guest's lifetime.
    Kernel,
    /// Page-cache copy of a virtual-disk page.
    Cache {
        /// The cached virtual-disk image page.
        image_page: u64,
    },
    /// Anonymous memory of a guest process.
    Anon {
        /// Owning process.
        proc: ProcId,
        /// Virtual page within that process.
        vpn: Vpn,
    },
    /// Pinned by the balloon driver and donated to the host.
    Balloon,
}

/// Errors surfaced by guest kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuestError {
    /// Memory could not be found even after invoking the OOM killer.
    OutOfMemory,
    /// The operation targeted a process the OOM killer has reaped.
    ProcessKilled(ProcId),
    /// The filesystem cannot hold a new file.
    FsFull(FsFullError),
}

impl fmt::Display for GuestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuestError::OutOfMemory => write!(f, "guest out of memory"),
            GuestError::ProcessKilled(p) => write!(f, "{p} was killed by the OOM killer"),
            GuestError::FsFull(e) => write!(f, "{e}"),
        }
    }
}

impl Error for GuestError {}

impl From<FsFullError> for GuestError {
    fn from(e: FsFullError) -> Self {
        GuestError::FsFull(e)
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    gfn: Gfn,
    dirty: bool,
    label: ContentLabel,
}

/// Dense page-cache index over image pages, stored as parallel arrays
/// whose empty state is all-zero bytes: construction over a multi-
/// gigabyte disk image is one `alloc_zeroed` (lazily mapped), not an
/// eager fill per guest.
#[derive(Debug)]
struct CacheIndex {
    /// `gfn + 1` per image page; `0` = not cached.
    gfn: Vec<u64>,
    /// Raw content label per cached image page.
    label: Vec<u64>,
    /// Dirty bit per image page (set only while the page is cached).
    dirty_bits: Vec<u64>,
}

impl CacheIndex {
    fn new(pages: u64) -> Self {
        CacheIndex {
            gfn: vec![0; pages as usize],
            label: vec![0; pages as usize],
            dirty_bits: vec![0; (pages as usize).div_ceil(64)],
        }
    }

    fn is_cached(&self, page: u64) -> bool {
        self.gfn[page as usize] != 0
    }

    fn get(&self, page: u64) -> Option<CacheEntry> {
        let gfn = self.gfn[page as usize].checked_sub(1)?;
        Some(CacheEntry {
            gfn: Gfn::new(gfn),
            dirty: self.dirty(page),
            label: ContentLabel::from_raw(self.label[page as usize]),
        })
    }

    fn insert(&mut self, page: u64, entry: CacheEntry) {
        self.gfn[page as usize] = entry.gfn.get() + 1;
        self.label[page as usize] = entry.label.get();
        self.set_dirty(page, entry.dirty);
    }

    fn remove(&mut self, page: u64) {
        self.gfn[page as usize] = 0;
        self.label[page as usize] = 0;
        self.set_dirty(page, false);
    }

    fn set_label(&mut self, page: u64, label: ContentLabel) {
        self.label[page as usize] = label.get();
    }

    fn dirty(&self, page: u64) -> bool {
        self.dirty_bits[(page / 64) as usize] & (1u64 << (page % 64)) != 0
    }

    fn set_dirty(&mut self, page: u64, dirty: bool) {
        let mask = 1u64 << (page % 64);
        if dirty {
            self.dirty_bits[(page / 64) as usize] |= mask;
        } else {
            self.dirty_bits[(page / 64) as usize] &= !mask;
        }
    }

    fn cached_count(&self) -> u64 {
        self.gfn.iter().filter(|&&g| g != 0).count() as u64
    }

    fn dirty_count(&self) -> u64 {
        self.dirty_bits.iter().map(|w| u64::from(w.count_ones())).sum()
    }
}

/// Minimum page-cache pages guest reclaim keeps before it starts swapping
/// anonymous memory instead.
const MIN_CACHE_PAGES: usize = 64;

/// The guest kernel. See the crate-level docs for an overview and example.
#[derive(Debug)]
pub struct GuestKernel {
    spec: GuestSpec,
    page_state: Vec<GuestPageState>,
    free_gfns: VecDeque<Gfn>,
    /// Page-cache index, dense over image pages (`spec.disk.pages()`
    /// entries). The reverse gfn → image-page direction lives in
    /// `page_state` as [`GuestPageState::Cache`], so cache lookups in
    /// both directions are array reads — no hashing on the fault path.
    cache: CacheIndex,
    cache_len: u64,
    cache_lru: IndexList,
    anon_lru: IndexList,
    dirty_fifo: VecDeque<u64>,
    dirty_count: u64,
    processes: Vec<Process>,
    fs: GuestFs,
    swap: GuestSwap,
    balloon: Vec<Gfn>,
    rng: DeterministicRng,
    stats: GuestStats,
    /// Decayed count of balloon-pressured anonymous swap-outs; crossing
    /// the spec's limit invokes the OOM killer (over-ballooning, §2.4).
    balloon_swap_score: u64,
    /// Operation counter driving periodic kernel-text touches.
    op_counter: u64,
    /// Round-robin cursor over the hot kernel pages.
    kernel_touch_cursor: u64,
    /// Reusable readahead-window snapshot for [`GuestKernel::guest_swap_in`];
    /// kept across faults so the steady state allocates nothing.
    swapin_scratch: Vec<(u64, GuestSlotInfo)>,
}

impl GuestKernel {
    /// Creates a guest with the given parameters. `seed` makes the guest's
    /// incidental randomness (unaligned-I/O choices) reproducible.
    ///
    /// # Panics
    ///
    /// Panics if the spec reserves more kernel pages than the guest has,
    /// or a swap partition larger than the disk.
    pub fn new(spec: GuestSpec, seed: u64) -> Self {
        let gfn_count = spec.memory.pages();
        assert!(spec.kernel_pages < gfn_count, "kernel larger than guest memory");
        let swap_pages = spec.swap.pages();
        let disk_pages = spec.disk.pages();
        assert!(swap_pages < disk_pages, "swap larger than guest disk");
        let mut page_state = vec![GuestPageState::Free; gfn_count as usize];
        for s in page_state.iter_mut().take(spec.kernel_pages as usize) {
            *s = GuestPageState::Kernel;
        }
        // Lowest free gfn is handed out first. Freed pages are reused
        // FIFO (coldest first): at the scale of a busy kernel, a freed
        // frame sits in the allocator long enough for plenty to happen to
        // its host-side state — the precondition for stale and false swap
        // reads.
        let free_gfns = (spec.kernel_pages..gfn_count).map(Gfn::new).collect();
        GuestKernel {
            page_state,
            free_gfns,
            cache: CacheIndex::new(disk_pages),
            cache_len: 0,
            cache_lru: IndexList::with_capacity(gfn_count as usize),
            anon_lru: IndexList::with_capacity(gfn_count as usize),
            dirty_fifo: VecDeque::new(),
            dirty_count: 0,
            processes: Vec::new(),
            fs: GuestFs::new(swap_pages, disk_pages),
            swap: GuestSwap::new(0, swap_pages),
            balloon: Vec::new(),
            rng: DeterministicRng::seed_from(seed),
            stats: GuestStats::new(),
            balloon_swap_score: 0,
            op_counter: 0,
            kernel_touch_cursor: 0,
            swapin_scratch: Vec::new(),
            spec,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Guest parameters.
    pub fn spec(&self) -> &GuestSpec {
        &self.spec
    }

    /// Cumulative guest counters.
    pub fn stats(&self) -> &GuestStats {
        &self.stats
    }

    /// Pages currently in the guest page cache.
    pub fn cache_pages(&self) -> u64 {
        self.cache_len
    }

    /// Clean (non-dirty) pages in the guest page cache — the population
    /// the Swap Mapper can track (Figure 15).
    pub fn cache_clean_pages(&self) -> u64 {
        self.cache_len - self.dirty_count
    }

    /// Pages on the guest free list.
    pub fn free_pages(&self) -> u64 {
        self.free_gfns.len() as u64
    }

    /// Pages currently pinned by the balloon.
    pub fn balloon_pages(&self) -> u64 {
        self.balloon.len() as u64
    }

    /// Resident anonymous pages across all processes.
    pub fn anon_resident_pages(&self) -> u64 {
        self.anon_lru.len() as u64
    }

    /// Every live guest page and the content the guest expects to read
    /// from it: resident page-cache and anonymous pages, in gfn order.
    /// Whatever the host did behind the guest's back — swap, discard,
    /// degrade, recover from an injected fault — the host-side signature
    /// of each listed gfn must equal the listed label. Gfns the guest has
    /// freed are deliberately absent: the host may keep stale copies of
    /// those, and their fate is not guest-visible.
    pub fn expected_resident_content(&self) -> Vec<(Gfn, ContentLabel)> {
        self.page_state
            .iter()
            .enumerate()
            .filter_map(|(idx, state)| {
                let gfn = Gfn::new(idx as u64);
                match *state {
                    GuestPageState::Cache { image_page } => {
                        Some((gfn, self.cache.get(image_page).expect("cached").label))
                    }
                    GuestPageState::Anon { proc, vpn } => {
                        match self.processes[proc.index()].pages[vpn.index()] {
                            AnonPage::Resident { gfn: g, label } => {
                                debug_assert_eq!(g, gfn);
                                Some((gfn, label))
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                }
            })
            .collect()
    }

    /// True if the process is still alive (not reaped by the OOM killer).
    pub fn is_alive(&self, proc: ProcId) -> bool {
        self.processes.get(proc.index()).is_some_and(|p| p.alive)
    }

    /// Size of a file in pages.
    pub fn file_len(&self, file: FileId) -> u64 {
        self.fs.len(file)
    }

    // ------------------------------------------------------------------
    // Files and processes
    // ------------------------------------------------------------------

    /// Creates a file of `pages` pages on the guest filesystem.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::FsFull`] if the disk has no room.
    pub fn create_file(&mut self, pages: u64) -> Result<FileId, GuestError> {
        Ok(self.fs.create(pages)?)
    }

    /// Spawns a process with an empty address space.
    pub fn spawn_process(&mut self) -> ProcId {
        self.processes.push(Process::new());
        ProcId::new(self.processes.len() as u32 - 1)
    }

    /// Grows a process's anonymous address space by `pages` pages,
    /// returning the first new virtual page. No memory is committed until
    /// the pages are touched.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::ProcessKilled`] if the process is dead.
    pub fn alloc_anon(&mut self, proc: ProcId, pages: u64) -> Result<Vpn, GuestError> {
        self.check_alive(proc)?;
        Ok(self.processes[proc.index()].grow(pages))
    }

    /// Boots the guest: reads its boot files and dirties daemon memory,
    /// populating the page cache the way a freshly booted OS would — so
    /// benchmark-time allocations recycle previously used frames.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (should not happen at boot sizes).
    pub fn boot(&mut self, hw: &mut dyn VirtualHardware) -> Result<SimDuration, GuestError> {
        let mut elapsed = SimDuration::ZERO;
        if self.spec.boot_file_pages > 0 {
            let boot_file = self.create_file(self.spec.boot_file_pages)?;
            elapsed += self.read_file(hw, boot_file, 0, self.spec.boot_file_pages)?;
        }
        if self.spec.boot_anon_pages > 0 {
            let init = self.spawn_process();
            let vpn = self.alloc_anon(init, self.spec.boot_anon_pages)?;
            for i in 0..self.spec.boot_anon_pages {
                elapsed += self.touch_anon(hw, init, vpn.offset(i), true)?;
            }
        }
        Ok(elapsed)
    }

    // ------------------------------------------------------------------
    // File I/O
    // ------------------------------------------------------------------

    /// Reads `count` pages of `file` starting at page `offset` through the
    /// page cache, with sequential readahead on misses.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::OutOfMemory`] if cache pages cannot be
    /// allocated even after the OOM killer runs.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the file.
    pub fn read_file(
        &mut self,
        hw: &mut dyn VirtualHardware,
        file: FileId,
        offset: u64,
        count: u64,
    ) -> Result<SimDuration, GuestError> {
        let mut elapsed = self.kernel_text_touch(hw);
        let file_len = self.fs.len(file);
        assert!(offset + count <= file_len, "read past end of {file}");
        let mut p = offset;
        while p < offset + count {
            let image_page = self.fs.image_page(file, p);
            if let Some(entry) = self.cache.get(image_page) {
                self.stats.cache_hits += 1;
                let r = hw.mem_read(entry.gfn);
                debug_assert_eq!(r.label, entry.label, "cache content diverged at {file}:{p}");
                elapsed += r.latency;
                self.cache_lru.move_to_back(entry.gfn.index());
                p += 1;
                continue;
            }

            // Miss: read a readahead run of uncached pages.
            self.stats.cache_misses += 1;
            let max_run = self.spec.file_readahead.min(file_len - p);
            let mut run = 0;
            while run < max_run {
                let ip = self.fs.image_page(file, p + run);
                if self.cache.is_cached(ip) {
                    break;
                }
                run += 1;
            }
            debug_assert!(run >= 1);
            let mut gfns = Vec::with_capacity(run as usize);
            for _ in 0..run {
                gfns.push(self.alloc_gfn(hw)?);
            }
            let aligned = !self.rng.chance(self.spec.unaligned_io_fraction);
            elapsed += hw.disk_read(image_page, &gfns, aligned);
            for (i, &gfn) in gfns.iter().enumerate() {
                let ip = image_page + i as u64;
                let label = hw.image_label(ip);
                self.install_cache_page(gfn, ip, label, false);
            }
            self.stats.readahead_pages += run - 1;
            let first = self.cache.get(image_page).expect("just installed");
            let r = hw.mem_read(first.gfn);
            debug_assert_eq!(r.label, first.label, "freshly read content diverged");
            elapsed += r.latency;
            p += 1;
        }
        self.writeback_if_over_ratio(hw, &mut elapsed);
        Ok(elapsed)
    }

    /// Writes `count` whole pages of `file` starting at page `offset`
    /// through the page cache (write-back caching).
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::OutOfMemory`] on allocation failure.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the file.
    pub fn write_file(
        &mut self,
        hw: &mut dyn VirtualHardware,
        file: FileId,
        offset: u64,
        count: u64,
    ) -> Result<SimDuration, GuestError> {
        let mut elapsed = self.kernel_text_touch(hw);
        assert!(offset + count <= self.fs.len(file), "write past end of {file}");
        for p in offset..offset + count {
            let image_page = self.fs.image_page(file, p);
            if let Some(entry) = self.cache.get(image_page) {
                let r = hw.mem_write(entry.gfn);
                elapsed += r.latency;
                self.cache_lru.move_to_back(entry.gfn.index());
                self.mark_dirty(image_page, r.label);
            } else {
                let gfn = self.alloc_gfn(hw)?;
                let label = hw.fresh_label();
                let r = hw.mem_overwrite(gfn, label);
                elapsed += r.latency;
                self.install_cache_page(gfn, image_page, label, true);
            }
        }
        self.writeback_if_over_ratio(hw, &mut elapsed);
        Ok(elapsed)
    }

    /// Flushes every dirty page-cache page to the virtual disk (fsync).
    pub fn sync(&mut self, hw: &mut dyn VirtualHardware) -> SimDuration {
        let mut elapsed = SimDuration::ZERO;
        while self.dirty_count > 0 {
            elapsed += self.writeback_batch(hw, 64);
        }
        elapsed
    }

    /// Drops the entire page cache (`echo 3 > /proc/sys/vm/drop_caches`),
    /// writing dirty pages back first. The freed frames join the free
    /// list; the host is *not* told (it keeps their stale copies — the
    /// seed of future stale and false swap reads).
    pub fn drop_caches(&mut self, hw: &mut dyn VirtualHardware) -> SimDuration {
        let mut elapsed = self.sync(hw);
        while let Some(idx) = self.cache_lru.pop_front() {
            let gfn = Gfn::new(idx as u64);
            let GuestPageState::Cache { image_page } = self.page_state[idx] else {
                unreachable!("cache LRU holds only cache pages");
            };
            self.cache.remove(image_page);
            self.cache_len -= 1;
            self.stats.dropped_clean += 1;
            self.release_gfn(gfn);
        }
        // Dropping a quarter-million entries takes the kernel a moment.
        elapsed += SimDuration::from_micros(50);
        elapsed
    }

    /// Invalidates one page whose only copy died with a crashed host:
    /// the guest drops it and re-faults on next access, exactly like a
    /// page-cache drop or a never-swapped-in anonymous page after a
    /// power failure. A dirty cache page reverts to the on-disk file
    /// content (the un-synced write is lost); a resident anonymous page
    /// reverts to untouched (zero-fill on next touch). Kernel, balloon,
    /// and free pages need no invalidation. Returns `true` if guest
    /// state changed.
    pub fn crash_drop_page(&mut self, gfn: Gfn) -> bool {
        match self.page_state[gfn.index()] {
            GuestPageState::Cache { image_page } => {
                self.clear_dirty(image_page);
                self.cache_lru.remove(gfn.index());
                self.cache.remove(image_page);
                self.cache_len -= 1;
                self.stats.dropped_clean += 1;
                self.release_gfn(gfn);
                true
            }
            GuestPageState::Anon { proc, vpn } => {
                self.anon_lru.remove(gfn.index());
                self.processes[proc.index()].pages[vpn.index()] = AnonPage::Untouched;
                self.release_gfn(gfn);
                true
            }
            GuestPageState::Kernel | GuestPageState::Balloon | GuestPageState::Free => false,
        }
    }

    // ------------------------------------------------------------------
    // Anonymous memory
    // ------------------------------------------------------------------

    /// Touches one anonymous page, materializing (zeroing) it on first
    /// touch and swapping it in from the guest swap partition if the guest
    /// paged it out.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::ProcessKilled`] if the process is dead, or
    /// [`GuestError::OutOfMemory`] on allocation failure.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` was never allocated.
    pub fn touch_anon(
        &mut self,
        hw: &mut dyn VirtualHardware,
        proc: ProcId,
        vpn: Vpn,
        write: bool,
    ) -> Result<SimDuration, GuestError> {
        self.check_alive(proc)?;
        let mut elapsed = self.kernel_text_touch(hw);
        match self.processes[proc.index()].pages[vpn.index()] {
            AnonPage::Untouched => {
                let gfn = self.alloc_gfn_for(hw, proc)?;
                // Zero the (possibly recycled) frame: a full-page
                // overwrite the host cannot predict.
                let r = hw.mem_overwrite(gfn, ContentLabel::ZERO);
                elapsed += r.latency;
                self.stats.pages_zeroed += 1;
                let label = if write {
                    let w = hw.mem_write(gfn);
                    elapsed += w.latency;
                    w.label
                } else {
                    ContentLabel::ZERO
                };
                self.install_anon_page(gfn, proc, vpn, label);
            }
            AnonPage::Resident { gfn, label } => {
                let r = if write { hw.mem_write(gfn) } else { hw.mem_read(gfn) };
                if !write {
                    debug_assert_eq!(r.label, label, "anon content diverged at {proc}/{vpn}");
                }
                elapsed += r.latency;
                self.anon_lru.move_to_back(gfn.index());
                if write {
                    self.set_anon_label(proc, vpn, r.label);
                }
            }
            AnonPage::Swapped { slot, .. } => {
                elapsed += self.guest_swap_in(hw, slot)?;
                // Retry: the page is resident now.
                elapsed += self.touch_anon(hw, proc, vpn, write)?;
            }
        }
        Ok(elapsed)
    }

    /// Overwrites one whole anonymous page with fresh content (memset,
    /// memcpy destination). Unlike [`GuestKernel::touch_anon`] with
    /// `write`, a swapped-out page is *not* swapped in — its old content
    /// is dead — and a host-swapped page triggers the false-read path.
    ///
    /// # Errors
    ///
    /// Same as [`GuestKernel::touch_anon`].
    ///
    /// # Panics
    ///
    /// Panics if `vpn` was never allocated.
    pub fn overwrite_anon(
        &mut self,
        hw: &mut dyn VirtualHardware,
        proc: ProcId,
        vpn: Vpn,
    ) -> Result<SimDuration, GuestError> {
        self.check_alive(proc)?;
        let mut elapsed = self.kernel_text_touch(hw);
        match self.processes[proc.index()].pages[vpn.index()] {
            AnonPage::Untouched => {
                let gfn = self.alloc_gfn_for(hw, proc)?;
                let label = hw.fresh_label();
                let r = hw.mem_overwrite(gfn, label);
                elapsed += r.latency;
                self.stats.pages_zeroed += 1;
                self.install_anon_page(gfn, proc, vpn, label);
            }
            AnonPage::Resident { gfn, .. } => {
                let label = hw.fresh_label();
                let r = hw.mem_overwrite(gfn, label);
                elapsed += r.latency;
                self.anon_lru.move_to_back(gfn.index());
                self.set_anon_label(proc, vpn, label);
            }
            AnonPage::Swapped { slot, .. } => {
                // The guest knows the old content is garbage: release the
                // guest swap slot and materialize a fresh page.
                self.swap.free(slot);
                self.processes[proc.index()].pages[vpn.index()] = AnonPage::Untouched;
                let gfn = self.alloc_gfn_for(hw, proc)?;
                let label = hw.fresh_label();
                let r = hw.mem_overwrite(gfn, label);
                elapsed += r.latency;
                self.install_anon_page(gfn, proc, vpn, label);
            }
        }
        Ok(elapsed)
    }

    /// Frees `count` anonymous pages of `proc` starting at `vpn`.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::ProcessKilled`] if the process is dead.
    pub fn free_anon(&mut self, proc: ProcId, vpn: Vpn, count: u64) -> Result<(), GuestError> {
        self.check_alive(proc)?;
        for i in 0..count {
            let v = vpn.offset(i);
            match self.processes[proc.index()].pages[v.index()] {
                AnonPage::Untouched => {}
                AnonPage::Resident { gfn, .. } => {
                    self.anon_lru.remove(gfn.index());
                    self.release_gfn(gfn);
                }
                AnonPage::Swapped { slot, .. } => self.swap.free(slot),
            }
            self.processes[proc.index()].pages[v.index()] = AnonPage::Untouched;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Ballooning
    // ------------------------------------------------------------------

    /// Inflates or deflates the balloon to `target` pinned pages. Inflation
    /// forces guest reclaim (and can trigger the OOM killer — the
    /// over-ballooning failure of §2.4); deflation returns pages to the
    /// guest free list.
    ///
    /// # Errors
    ///
    /// Returns [`GuestError::OutOfMemory`] if inflation cannot find pages
    /// even after the OOM killer runs.
    pub fn balloon_set_target(
        &mut self,
        hw: &mut dyn VirtualHardware,
        target: u64,
    ) -> Result<SimDuration, GuestError> {
        let mut elapsed = SimDuration::ZERO;
        while (self.balloon.len() as u64) < target {
            let gfn = match self.alloc_gfn(hw) {
                Ok(gfn) => gfn,
                Err(e) => {
                    self.stats.balloon_pages = self.balloon.len() as u64;
                    return Err(e);
                }
            };
            self.page_state[gfn.index()] = GuestPageState::Balloon;
            hw.balloon_release(gfn);
            self.balloon.push(gfn);
            // Guest reclaim I/O time is charged through alloc_gfn's
            // reclaim; inflation itself is cheap.
            elapsed += SimDuration::from_nanos(200);
        }
        while (self.balloon.len() as u64) > target {
            let gfn = self.balloon.pop().expect("balloon non-empty");
            self.page_state[gfn.index()] = GuestPageState::Free;
            self.free_gfns.push_back(gfn);
        }
        self.stats.balloon_pages = self.balloon.len() as u64;
        Ok(elapsed)
    }

    // ------------------------------------------------------------------
    // Reclaim, allocation, OOM
    // ------------------------------------------------------------------

    /// Allocates one guest-physical page, reclaiming or OOM-killing as
    /// needed.
    fn alloc_gfn(&mut self, hw: &mut dyn VirtualHardware) -> Result<Gfn, GuestError> {
        if let Some(gfn) = self.free_gfns.pop_front() {
            // Real slack (more than one reclaim batch free) means pressure
            // is easing; pages just freed by our own direct reclaim do not
            // count.
            if self.free_gfns.len() as u64 > self.spec.reclaim_batch {
                self.balloon_swap_score = self.balloon_swap_score.saturating_sub(1);
            }
            return Ok(gfn);
        }
        self.reclaim(hw, self.spec.reclaim_batch);
        if let Some(gfn) = self.free_gfns.pop_front() {
            return Ok(gfn);
        }
        self.oom_kill();
        self.free_gfns.pop_front().ok_or(GuestError::OutOfMemory)
    }

    /// Allocates a page on behalf of `proc`, handling the case where the
    /// allocation's own reclaim pressure OOM-killed the requester.
    fn alloc_gfn_for(
        &mut self,
        hw: &mut dyn VirtualHardware,
        proc: ProcId,
    ) -> Result<Gfn, GuestError> {
        let gfn = self.alloc_gfn(hw)?;
        if !self.is_alive(proc) {
            self.release_gfn(gfn);
            return Err(GuestError::ProcessKilled(proc));
        }
        Ok(gfn)
    }

    /// Guest direct reclaim: drops clean page-cache pages first (keeping a
    /// small cache floor), writes back dirty ones, then swaps anonymous
    /// pages to the guest swap partition.
    fn reclaim(&mut self, hw: &mut dyn VirtualHardware, want: u64) {
        self.stats.reclaim_runs += 1;
        let mut freed = 0;
        while freed < want {
            let prefer_cache = !self.cache_lru.is_empty()
                && (self.cache_lru.len() > MIN_CACHE_PAGES || self.anon_lru.is_empty());
            if prefer_cache && self.drop_cache_victim(hw) {
                freed += 1;
                continue;
            }
            if self.swap_out_anon_victim(hw) {
                freed += 1;
                continue;
            }
            // Last resort: drain the cache below the floor.
            if !self.cache_lru.is_empty() && self.drop_cache_victim(hw) {
                freed += 1;
                continue;
            }
            break; // nothing reclaimable
        }
    }

    /// Drops the least-recently-used page-cache page (writing it back
    /// first if dirty). Returns false if the cache is empty.
    fn drop_cache_victim(&mut self, hw: &mut dyn VirtualHardware) -> bool {
        let Some(idx) = self.cache_lru.front() else { return false };
        let gfn = Gfn::new(idx as u64);
        let GuestPageState::Cache { image_page } = self.page_state[idx] else {
            unreachable!("cache LRU holds only cache pages");
        };
        let entry = self.cache.get(image_page).expect("cached");
        if entry.dirty {
            hw.disk_write_behind(&[gfn], image_page, true);
            self.stats.writebacks += 1;
            self.clear_dirty(image_page);
        } else {
            self.stats.dropped_clean += 1;
        }
        self.cache_lru.remove(idx);
        self.cache.remove(image_page);
        self.cache_len -= 1;
        self.release_gfn(gfn);
        true
    }

    /// Swaps the least-recently-used anonymous page to the guest swap
    /// partition. Returns false if there is nothing to swap or swap is
    /// full.
    fn swap_out_anon_victim(&mut self, hw: &mut dyn VirtualHardware) -> bool {
        let Some(idx) = self.anon_lru.front() else { return false };
        let gfn = Gfn::new(idx as u64);
        let GuestPageState::Anon { proc, vpn } = self.page_state[idx] else {
            unreachable!("anon LRU holds only anon pages");
        };
        let AnonPage::Resident { label, .. } = self.processes[proc.index()].pages[vpn.index()]
        else {
            unreachable!("resident page expected");
        };
        let Some(slot) = self.swap.alloc(GuestSlotInfo { proc, vpn, label }) else {
            return false;
        };
        hw.disk_write_behind(&[gfn], self.swap.image_page(slot), true);
        self.stats.guest_swap_outs += 1;
        hw.observe(sim_obs::Event::GuestSwapOut { pages: 1 });
        self.processes[proc.index()].pages[vpn.index()] = AnonPage::Swapped { slot, label };
        self.anon_lru.remove(idx);
        self.note_balloon_pressure();
        self.release_gfn(gfn);
        true
    }

    /// Over-ballooning detection: an anonymous swap-out while the balloon
    /// is inflated means reclaim is racing allocation demand. A sustained
    /// run of them (allocations served without reclaim decay the score)
    /// makes the kernel give up and OOM-kill — the failure the paper
    /// observes in its KVM setup (§2.4).
    fn note_balloon_pressure(&mut self) {
        if self.balloon.is_empty() {
            return;
        }
        self.balloon_swap_score += 1;
        // The tolerance cannot exceed a quarter of the guest's memory:
        // a small guest gives up sooner in absolute terms.
        let limit = self.spec.oom_balloon_swap_limit.min(self.spec.memory.pages() / 4);
        if self.balloon_swap_score > limit {
            self.balloon_swap_score = 0;
            self.oom_kill();
        }
    }

    /// Swaps in the page at `slot` plus a readahead window of neighbours.
    fn guest_swap_in(
        &mut self,
        hw: &mut dyn VirtualHardware,
        slot: u64,
    ) -> Result<SimDuration, GuestError> {
        let mut elapsed = SimDuration::ZERO;
        let mut loaded = 0;
        // Snapshot the window into a reusable scratch buffer: the loop
        // below mutates `self.swap` (alloc_gfn may reclaim), so it cannot
        // borrow the partition while walking it.
        let mut window = std::mem::take(&mut self.swapin_scratch);
        self.swap.window_into(slot, self.spec.swap_readahead, &mut window);
        for &(s, info) in &window {
            if self.swap.get(s) != Some(info) {
                continue; // raced with reclaim during our own allocations
            }
            if !self.is_alive(info.proc) {
                continue;
            }
            let gfn = self.alloc_gfn(hw)?;
            // The allocation may have run the OOM killer: revalidate.
            if self.swap.get(s) != Some(info) || !self.is_alive(info.proc) {
                self.release_gfn(gfn);
                continue;
            }
            elapsed += hw.disk_read(self.swap.image_page(s), &[gfn], true);
            debug_assert_eq!(hw.image_label(self.swap.image_page(s)), info.label);
            self.install_anon_page(gfn, info.proc, info.vpn, info.label);
            self.swap.free(s);
            self.stats.guest_swap_ins += 1;
            loaded += 1;
            if s != slot {
                self.stats.guest_swap_readahead += 1;
            }
        }
        self.swapin_scratch = window;
        if loaded > 0 {
            hw.observe(sim_obs::Event::GuestSwapIn { pages: loaded });
        }
        Ok(elapsed)
    }

    /// Kills the process with the largest resident set, freeing all its
    /// memory (the over-ballooning casualty, §2.4).
    fn oom_kill(&mut self) {
        let victim = self
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.alive)
            .max_by_key(|(_, p)| p.resident_count())
            .map(|(i, _)| ProcId::new(i as u32));
        let Some(victim) = victim else { return };
        self.stats.oom_kills += 1;
        let pages = std::mem::take(&mut self.processes[victim.index()].pages);
        self.processes[victim.index()].alive = false;
        for page in pages {
            match page {
                AnonPage::Untouched => {}
                AnonPage::Resident { gfn, .. } => {
                    self.anon_lru.remove(gfn.index());
                    self.release_gfn(gfn);
                }
                AnonPage::Swapped { slot, .. } => self.swap.free(slot),
            }
        }
    }

    // ------------------------------------------------------------------
    // Internal bookkeeping
    // ------------------------------------------------------------------

    /// Every guest operation runs kernel code: periodically touch a hot
    /// kernel-text page. The guest itself never pages these out, but an
    /// uncooperative host can — and then every syscall stalls on a major
    /// fault (the phenomenon behind the paper's §7 suggestion to teach
    /// hypervisors that kernels never page out their own text).
    fn kernel_text_touch(&mut self, hw: &mut dyn VirtualHardware) -> SimDuration {
        self.op_counter += 1;
        if self.op_counter % 64 != 0 || self.spec.kernel_pages == 0 {
            return SimDuration::ZERO;
        }
        // A quarter of the kernel is hot text.
        let hot = (self.spec.kernel_pages / 4).max(1);
        let page = self.kernel_touch_cursor % hot;
        self.kernel_touch_cursor += 1;
        hw.mem_read(Gfn::new(page)).latency
    }

    fn check_alive(&self, proc: ProcId) -> Result<(), GuestError> {
        if self.is_alive(proc) {
            Ok(())
        } else {
            Err(GuestError::ProcessKilled(proc))
        }
    }

    fn install_cache_page(&mut self, gfn: Gfn, image_page: u64, label: ContentLabel, dirty: bool) {
        self.page_state[gfn.index()] = GuestPageState::Cache { image_page };
        debug_assert!(!self.cache.is_cached(image_page), "double-caching {image_page}");
        self.cache.insert(image_page, CacheEntry { gfn, dirty, label });
        self.cache_len += 1;
        self.cache_lru.push_back(gfn.index());
        if dirty {
            self.dirty_count += 1;
            self.dirty_fifo.push_back(image_page);
        }
    }

    fn install_anon_page(&mut self, gfn: Gfn, proc: ProcId, vpn: Vpn, label: ContentLabel) {
        self.page_state[gfn.index()] = GuestPageState::Anon { proc, vpn };
        self.processes[proc.index()].pages[vpn.index()] = AnonPage::Resident { gfn, label };
        self.anon_lru.push_back(gfn.index());
    }

    fn set_anon_label(&mut self, proc: ProcId, vpn: Vpn, label: ContentLabel) {
        if let AnonPage::Resident { gfn, .. } = self.processes[proc.index()].pages[vpn.index()] {
            self.processes[proc.index()].pages[vpn.index()] = AnonPage::Resident { gfn, label };
        }
    }

    fn release_gfn(&mut self, gfn: Gfn) {
        self.page_state[gfn.index()] = GuestPageState::Free;
        self.free_gfns.push_back(gfn);
    }

    fn mark_dirty(&mut self, image_page: u64, label: ContentLabel) {
        assert!(self.cache.is_cached(image_page), "cached");
        self.cache.set_label(image_page, label);
        if !self.cache.dirty(image_page) {
            self.cache.set_dirty(image_page, true);
            self.dirty_count += 1;
            self.dirty_fifo.push_back(image_page);
        }
    }

    fn clear_dirty(&mut self, image_page: u64) {
        assert!(self.cache.is_cached(image_page), "cached");
        if self.cache.dirty(image_page) {
            self.cache.set_dirty(image_page, false);
            self.dirty_count -= 1;
        }
    }

    fn writeback_if_over_ratio(&mut self, hw: &mut dyn VirtualHardware, elapsed: &mut SimDuration) {
        let limit = (self.spec.memory.pages() as f64 * self.spec.dirty_ratio) as u64;
        while self.dirty_count > limit.max(1) {
            *elapsed += self.writeback_batch(hw, 64);
        }
    }

    /// Writes back up to `batch` dirty pages, grouping contiguous image
    /// pages into single requests.
    fn writeback_batch(&mut self, hw: &mut dyn VirtualHardware, batch: u64) -> SimDuration {
        let mut elapsed = SimDuration::ZERO;
        let mut victims: Vec<u64> = Vec::new();
        while victims.len() < batch as usize {
            let Some(image_page) = self.dirty_fifo.pop_front() else { break };
            if self.cache.is_cached(image_page) && self.cache.dirty(image_page) {
                victims.push(image_page);
            }
        }
        victims.sort_unstable();
        let mut i = 0;
        while i < victims.len() {
            let mut j = i + 1;
            while j < victims.len() && victims[j] == victims[j - 1] + 1 {
                j += 1;
            }
            let gfns: Vec<Gfn> =
                victims[i..j].iter().map(|p| self.cache.get(*p).expect("cached").gfn).collect();
            elapsed += hw.disk_write(&gfns, victims[i], true);
            for p in &victims[i..j] {
                self.clear_dirty(*p);
                self.stats.writebacks += 1;
            }
            i = j;
        }
        elapsed
    }

    /// Checks internal invariants; for tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        let mut counted_free = 0u64;
        for (i, state) in self.page_state.iter().enumerate() {
            let gfn = Gfn::new(i as u64);
            match *state {
                GuestPageState::Free => counted_free += 1,
                GuestPageState::Kernel | GuestPageState::Balloon => {}
                GuestPageState::Cache { image_page } => {
                    let entry = self
                        .cache
                        .get(image_page)
                        .ok_or_else(|| format!("{gfn} claims uncached page {image_page}"))?;
                    if entry.gfn != gfn {
                        return Err(format!("cache entry for {image_page} points elsewhere"));
                    }
                    if !self.cache_lru.contains(i) {
                        return Err(format!("{gfn} cached but not on cache LRU"));
                    }
                }
                GuestPageState::Anon { proc, vpn } => {
                    match self.processes[proc.index()].pages[vpn.index()] {
                        AnonPage::Resident { gfn: g, .. } if g == gfn => {}
                        other => {
                            return Err(format!("{gfn} claims {proc}/{vpn} but found {other:?}"))
                        }
                    }
                    if !self.anon_lru.contains(i) {
                        return Err(format!("{gfn} anon but not on anon LRU"));
                    }
                }
            }
        }
        if counted_free != self.free_pages() {
            return Err(format!(
                "free count mismatch: {} states vs {} on list",
                counted_free,
                self.free_pages()
            ));
        }
        let cached = self.cache.cached_count();
        if cached != self.cache_len {
            return Err(format!("cache len {} != actual {cached}", self.cache_len));
        }
        if self.cache_len != self.cache_lru.len() as u64 {
            return Err("cache index and LRU out of sync".to_owned());
        }
        let dirty = self.cache.dirty_count();
        if dirty != self.dirty_count {
            return Err(format!("dirty count {} != actual {dirty}", self.dirty_count));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::MockHardware;

    /// A 256-page guest (16 kernel pages => 240 usable) over a 4096-page
    /// disk with a 512-page swap partition.
    fn small_guest() -> (GuestKernel, MockHardware) {
        let spec = GuestSpec {
            memory: vswap_mem::MemBytes::from_bytes(256 * 4096),
            disk: vswap_mem::MemBytes::from_bytes(4096 * 4096),
            swap: vswap_mem::MemBytes::from_bytes(512 * 4096),
            file_readahead: 8,
            swap_readahead: 4,
            reclaim_batch: 8,
            kernel_pages: 16,
            boot_file_pages: 0,
            boot_anon_pages: 0,
            ..GuestSpec::linux_default()
        };
        (GuestKernel::new(spec, 42), MockHardware::new(4096))
    }

    #[test]
    fn read_uses_readahead_and_cache() {
        let (mut g, mut hw) = small_guest();
        let f = g.create_file(32).unwrap();
        g.read_file(&mut hw, f, 0, 32).unwrap();
        // 32 pages / 8-page readahead = 4 misses.
        assert_eq!(g.stats().cache_misses, 4);
        assert_eq!(g.stats().readahead_pages, 32 - 4);
        assert_eq!(hw.disk_reads, 4);
        // Pages brought in by readahead count as hits when touched: 28.
        assert_eq!(g.stats().cache_hits, 28);
        g.read_file(&mut hw, f, 0, 32).unwrap();
        assert_eq!(g.stats().cache_misses, 4, "second pass fully cached");
        assert_eq!(g.stats().cache_hits, 28 + 32);
        g.audit().unwrap();
    }

    #[test]
    fn cache_pressure_drops_clean_pages_silently() {
        let (mut g, mut hw) = small_guest();
        // 400 file pages > 240 usable: reclaim must drop clean cache.
        let f = g.create_file(400).unwrap();
        g.read_file(&mut hw, f, 0, 400).unwrap();
        assert!(g.stats().dropped_clean > 0);
        assert_eq!(hw.disk_writes, 0, "clean drops cost no I/O");
        assert!(g.cache_pages() <= 240);
        g.audit().unwrap();
    }

    #[test]
    fn rereading_dropped_pages_misses_again() {
        let (mut g, mut hw) = small_guest();
        let f = g.create_file(400).unwrap();
        g.read_file(&mut hw, f, 0, 400).unwrap();
        let misses = g.stats().cache_misses;
        g.read_file(&mut hw, f, 0, 64).unwrap();
        assert!(g.stats().cache_misses > misses, "dropped pages must be re-read");
        g.audit().unwrap();
    }

    #[test]
    fn write_file_dirties_and_writeback_on_sync() {
        let (mut g, mut hw) = small_guest();
        let f = g.create_file(16).unwrap();
        g.write_file(&mut hw, f, 0, 16).unwrap();
        assert_eq!(g.cache_pages(), 16);
        assert_eq!(g.cache_clean_pages(), 0);
        let d = g.sync(&mut hw);
        assert!(d.as_nanos() > 0);
        assert_eq!(g.stats().writebacks, 16);
        assert_eq!(g.cache_clean_pages(), 16);
        // Content round-trips: re-reading gives the written labels.
        g.audit().unwrap();
    }

    #[test]
    fn written_content_round_trips_through_disk() {
        let (mut g, mut hw) = small_guest();
        let f = g.create_file(4).unwrap();
        g.write_file(&mut hw, f, 0, 4).unwrap();
        g.sync(&mut hw);
        // Force the cache out.
        let big = g.create_file(400).unwrap();
        g.read_file(&mut hw, big, 0, 400).unwrap();
        // Re-read: content must match what the image now stores (the
        // debug assertion inside read_file checks label equality).
        g.read_file(&mut hw, f, 0, 4).unwrap();
        g.audit().unwrap();
    }

    #[test]
    fn anon_pressure_swaps_to_guest_swap() {
        let (mut g, mut hw) = small_guest();
        let p = g.spawn_process();
        let base = g.alloc_anon(p, 300).unwrap();
        for i in 0..300 {
            g.touch_anon(&mut hw, p, base.offset(i), true).unwrap();
        }
        assert!(g.stats().guest_swap_outs > 0, "working set exceeds memory");
        assert!(g.is_alive(p), "swap absorbs the overcommit");
        // Touch an early page: swap-in with readahead.
        g.touch_anon(&mut hw, p, base, false).unwrap();
        assert!(g.stats().guest_swap_ins > 0);
        assert!(g.stats().guest_swap_readahead > 0);
        g.audit().unwrap();
    }

    #[test]
    fn overwrite_of_guest_swapped_page_skips_swap_in() {
        let (mut g, mut hw) = small_guest();
        let p = g.spawn_process();
        let base = g.alloc_anon(p, 300).unwrap();
        for i in 0..300 {
            g.touch_anon(&mut hw, p, base.offset(i), true).unwrap();
        }
        let swap_ins = g.stats().guest_swap_ins;
        // Find a guest-swapped page and overwrite it wholesale.
        let victim = (0..300)
            .map(|i| base.offset(i))
            .find(|v| matches!(g.processes[p.index()].pages[v.index()], AnonPage::Swapped { .. }))
            .expect("something guest-swapped");
        g.overwrite_anon(&mut hw, p, victim).unwrap();
        assert_eq!(g.stats().guest_swap_ins, swap_ins, "old content must not be read");
        g.audit().unwrap();
    }

    #[test]
    fn balloon_inflation_reclaims_and_deflation_returns() {
        let (mut g, mut hw) = small_guest();
        let f = g.create_file(200).unwrap();
        g.read_file(&mut hw, f, 0, 200).unwrap();
        g.balloon_set_target(&mut hw, 100).unwrap();
        assert_eq!(g.balloon_pages(), 100);
        assert_eq!(hw.released.len(), 100);
        assert!(g.stats().dropped_clean > 0, "inflation squeezed the cache");
        g.balloon_set_target(&mut hw, 20).unwrap();
        assert_eq!(g.balloon_pages(), 20);
        assert!(g.free_pages() >= 80);
        g.audit().unwrap();
    }

    #[test]
    fn over_ballooning_triggers_oom_killer() {
        let (mut g, mut hw) = small_guest();
        let p = g.spawn_process();
        let base = g.alloc_anon(p, 700).unwrap();
        // Fill swap + memory with anonymous pages.
        let mut killed = false;
        for i in 0..700 {
            if g.touch_anon(&mut hw, p, base.offset(i), true).is_err() {
                killed = true;
                break;
            }
        }
        if !killed {
            // Now demand almost everything for the balloon.
            let _ = g.balloon_set_target(&mut hw, 230);
        }
        assert!(g.stats().oom_kills > 0, "OOM killer must fire");
        assert!(!g.is_alive(p));
        let err = g.touch_anon(&mut hw, p, base, false).unwrap_err();
        assert_eq!(err, GuestError::ProcessKilled(p));
        g.audit().unwrap();
    }

    #[test]
    fn free_anon_releases_memory_and_slots() {
        let (mut g, mut hw) = small_guest();
        let p = g.spawn_process();
        let base = g.alloc_anon(p, 300).unwrap();
        for i in 0..300 {
            g.touch_anon(&mut hw, p, base.offset(i), true).unwrap();
        }
        let used_slots = g.swap.used();
        assert!(used_slots > 0);
        g.free_anon(p, base, 300).unwrap();
        assert_eq!(g.swap.used(), 0);
        assert_eq!(g.anon_resident_pages(), 0);
        g.audit().unwrap();
    }

    #[test]
    fn boot_populates_cache_and_anon() {
        let spec = GuestSpec {
            memory: vswap_mem::MemBytes::from_bytes(512 * 4096),
            disk: vswap_mem::MemBytes::from_bytes(8192 * 4096),
            swap: vswap_mem::MemBytes::from_bytes(512 * 4096),
            kernel_pages: 16,
            boot_file_pages: 64,
            boot_anon_pages: 32,
            ..GuestSpec::small_test()
        };
        let mut g = GuestKernel::new(spec, 1);
        let mut hw = MockHardware::new(8192);
        g.boot(&mut hw).unwrap();
        assert_eq!(g.cache_pages(), 64);
        assert_eq!(g.anon_resident_pages(), 32);
        g.audit().unwrap();
    }

    #[test]
    fn lifo_free_list_recycles_recently_dropped_frames() {
        let (mut g, mut hw) = small_guest();
        let f = g.create_file(400).unwrap();
        g.read_file(&mut hw, f, 0, 400).unwrap();
        // All free pages were recycled through the cache at least once —
        // the precondition for stale/false swap reads at the host.
        let p = g.spawn_process();
        let base = g.alloc_anon(p, 8).unwrap();
        g.touch_anon(&mut hw, p, base, true).unwrap();
        assert!(g.stats().pages_zeroed > 0);
        g.audit().unwrap();
    }

    #[test]
    fn dirty_ratio_forces_writeback_during_writes() {
        let (mut g, mut hw) = small_guest();
        // dirty_ratio 0.20 of 256 pages = 51 pages.
        let f = g.create_file(150).unwrap();
        g.write_file(&mut hw, f, 0, 150).unwrap();
        assert!(g.stats().writebacks > 0, "dirty threshold must flush");
        assert!(g.dirty_count <= 52);
        g.audit().unwrap();
    }
}

#[cfg(test)]
mod thrash_tests {
    use super::*;
    use crate::hardware::MockHardware;

    fn guest(memory_pages: u64, limit: u64) -> (GuestKernel, MockHardware) {
        let spec = GuestSpec {
            memory: vswap_mem::MemBytes::from_bytes(memory_pages * 4096),
            disk: vswap_mem::MemBytes::from_bytes(16384 * 4096),
            swap: vswap_mem::MemBytes::from_bytes(4096 * 4096),
            kernel_pages: 16,
            boot_file_pages: 0,
            boot_anon_pages: 0,
            oom_balloon_swap_limit: limit,
            ..GuestSpec::small_test()
        };
        (GuestKernel::new(spec, 9), MockHardware::new(16384))
    }

    #[test]
    fn over_ballooned_allocation_burst_triggers_oom() {
        // Balloon pins most of the guest; a 400-page allocation burst
        // must sustain swap-outs and trip the over-ballooning guard.
        let (mut g, mut hw) = guest(512, 64);
        g.balloon_set_target(&mut hw, 400).unwrap();
        let p = g.spawn_process();
        let base = g.alloc_anon(p, 400).unwrap();
        let mut died = false;
        for i in 0..400 {
            if g.touch_anon(&mut hw, p, base.offset(i), true).is_err() {
                died = true;
                break;
            }
        }
        assert!(died, "allocation burst under a large balloon must OOM");
        assert!(g.stats().oom_kills >= 1);
        g.audit().unwrap();
    }

    #[test]
    fn same_burst_without_balloon_survives_on_swap() {
        let (mut g, mut hw) = guest(512, 64);
        let p = g.spawn_process();
        let base = g.alloc_anon(p, 900).unwrap();
        for i in 0..900 {
            g.touch_anon(&mut hw, p, base.offset(i), true).unwrap();
        }
        assert_eq!(g.stats().oom_kills, 0, "without a balloon the guard never fires");
        assert!(g.stats().guest_swap_outs > 0);
        g.audit().unwrap();
    }

    #[test]
    fn modest_balloon_with_fitting_working_set_survives() {
        let (mut g, mut hw) = guest(512, 10_240);
        g.balloon_set_target(&mut hw, 100).unwrap();
        let p = g.spawn_process();
        let base = g.alloc_anon(p, 300).unwrap();
        for i in 0..300 {
            g.touch_anon(&mut hw, p, base.offset(i), true).unwrap();
        }
        assert_eq!(g.stats().oom_kills, 0);
        g.audit().unwrap();
    }
}

#[cfg(test)]
mod kernel_text_tests {
    use super::*;
    use crate::hardware::MockHardware;

    #[test]
    fn operations_periodically_touch_kernel_text() {
        let spec = GuestSpec {
            memory: vswap_mem::MemBytes::from_bytes(512 * 4096),
            disk: vswap_mem::MemBytes::from_bytes(4096 * 4096),
            swap: vswap_mem::MemBytes::from_bytes(512 * 4096),
            kernel_pages: 64,
            boot_file_pages: 0,
            boot_anon_pages: 0,
            ..GuestSpec::small_test()
        };
        let mut g = GuestKernel::new(spec, 1);
        let mut hw = MockHardware::new(4096);
        let p = g.spawn_process();
        let base = g.alloc_anon(p, 256).unwrap();
        for i in 0..256 {
            g.touch_anon(&mut hw, p, base.offset(i), true).unwrap();
        }
        // 256 ops => 4 kernel-text touches rotated over the hot quarter.
        assert_eq!(g.op_counter, 256);
        assert_eq!(g.kernel_touch_cursor, 4);
        g.audit().unwrap();
    }

    #[test]
    fn zero_kernel_pages_never_touch() {
        let spec = GuestSpec {
            memory: vswap_mem::MemBytes::from_bytes(256 * 4096),
            disk: vswap_mem::MemBytes::from_bytes(4096 * 4096),
            swap: vswap_mem::MemBytes::from_bytes(256 * 4096),
            kernel_pages: 1, // minimum; hot quarter clamps to one page
            boot_file_pages: 0,
            boot_anon_pages: 0,
            ..GuestSpec::small_test()
        };
        let mut g = GuestKernel::new(spec, 1);
        let mut hw = MockHardware::new(4096);
        let f = g.create_file(128).unwrap();
        g.read_file(&mut hw, f, 0, 128).unwrap();
        g.audit().unwrap();
    }
}
