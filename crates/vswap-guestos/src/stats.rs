//! Guest kernel event counters.

use sim_core::StatSet;

/// Cumulative guest-kernel event counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuestStats {
    /// File reads satisfied from the guest page cache.
    pub cache_hits: u64,
    /// File reads that missed the cache and required virtual-disk I/O.
    pub cache_misses: u64,
    /// Pages read beyond the missing one by guest file readahead.
    pub readahead_pages: u64,
    /// Dirty cache pages written back to the virtual disk.
    pub writebacks: u64,
    /// Clean cache pages dropped by guest reclaim (no I/O, no host
    /// notification — the silent drop behind stale/false reads).
    pub dropped_clean: u64,
    /// Anonymous pages the guest swapped out to its own swap partition.
    pub guest_swap_outs: u64,
    /// Anonymous pages the guest swapped back in.
    pub guest_swap_ins: u64,
    /// Pages brought in by guest swap readahead beyond the faulting page.
    pub guest_swap_readahead: u64,
    /// Guest direct-reclaim passes.
    pub reclaim_runs: u64,
    /// Processes killed by the guest OOM killer (over-ballooning, §2.4).
    pub oom_kills: u64,
    /// Pages currently pinned by the balloon.
    pub balloon_pages: u64,
    /// Anonymous pages zeroed on first touch or reuse (full-page
    /// overwrites — the false-read trigger).
    pub pages_zeroed: u64,
}

impl GuestStats {
    /// Creates a zeroed record.
    pub fn new() -> Self {
        GuestStats::default()
    }

    /// Renders the record as a named [`StatSet`] for reports.
    pub fn to_stat_set(&self) -> StatSet {
        let mut s = StatSet::new();
        s.set("guest_cache_hits", self.cache_hits);
        s.set("guest_cache_misses", self.cache_misses);
        s.set("guest_readahead_pages", self.readahead_pages);
        s.set("guest_writebacks", self.writebacks);
        s.set("guest_dropped_clean", self.dropped_clean);
        s.set("guest_swap_outs", self.guest_swap_outs);
        s.set("guest_swap_ins", self.guest_swap_ins);
        s.set("guest_swap_readahead", self.guest_swap_readahead);
        s.set("guest_reclaim_runs", self.reclaim_runs);
        s.set("guest_oom_kills", self.oom_kills);
        s.set("guest_balloon_pages", self.balloon_pages);
        s.set("guest_pages_zeroed", self.pages_zeroed);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_set_reflects_fields() {
        let stats = GuestStats { oom_kills: 2, cache_hits: 5, ..GuestStats::new() };
        let set = stats.to_stat_set();
        assert_eq!(set.get("guest_oom_kills"), 2);
        assert_eq!(set.get("guest_cache_hits"), 5);
        assert_eq!(set.get("guest_swap_outs"), 0);
    }
}
