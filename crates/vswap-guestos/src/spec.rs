//! Guest size and behaviour parameters.

use vswap_mem::MemBytes;

/// Parameters of one guest: how big it believes it is and how its kernel
/// behaves.
///
/// # Examples
///
/// ```
/// use vswap_guestos::GuestSpec;
/// use vswap_mem::MemBytes;
///
/// let spec = GuestSpec { memory: MemBytes::from_mb(512), ..GuestSpec::linux_default() };
/// assert_eq!(spec.memory.pages(), 131_072);
/// ```
#[derive(Debug, Clone)]
pub struct GuestSpec {
    /// Guest-physical memory size (what the guest believes it has).
    pub memory: MemBytes,
    /// Virtual-disk image size.
    pub disk: MemBytes,
    /// Guest swap partition size (carved from the front of the disk).
    pub swap: MemBytes,
    /// File readahead window in pages (Linux default 128 KiB).
    pub file_readahead: u64,
    /// Guest swap readahead window in pages.
    pub swap_readahead: u64,
    /// Pages reclaimed per guest direct-reclaim pass.
    pub reclaim_batch: u64,
    /// Writeback threshold: flush when dirty pages exceed this fraction of
    /// guest memory (Linux `dirty_ratio`-ish).
    pub dirty_ratio: f64,
    /// Pages the guest kernel itself occupies (text, slabs); touched at
    /// boot, never reclaimed.
    pub kernel_pages: u64,
    /// File pages read during boot (populates the page cache so that
    /// benchmark-time allocations recycle previously used frames).
    pub boot_file_pages: u64,
    /// Anonymous pages dirtied during boot (daemons etc.).
    pub boot_anon_pages: u64,
    /// Fraction of virtual-disk requests issued without 4 KiB alignment
    /// (0.0 for Linux guests; > 0 for the Windows profile, §5.4).
    pub unaligned_io_fraction: f64,
    /// Over-ballooning detection (§2.4): while the balloon is inflated,
    /// every anonymous swap-out raises a pressure score and every
    /// allocation served without reclaim I/O lowers it. Crossing this
    /// limit invokes the OOM killer — modelling a guest whose reclaim
    /// cannot keep pace with balloon-squeezed allocation demand. Without
    /// a balloon the score never rises, matching the paper's observation
    /// that only balloon configurations kill applications.
    pub oom_balloon_swap_limit: u64,
}

impl GuestSpec {
    /// An Ubuntu 12.04-like guest, the paper's main configuration.
    pub fn linux_default() -> Self {
        GuestSpec {
            memory: MemBytes::from_mb(512),
            disk: MemBytes::from_gb(20),
            swap: MemBytes::from_gb(1),
            file_readahead: 32,
            swap_readahead: 8,
            reclaim_batch: 32,
            dirty_ratio: 0.20,
            kernel_pages: MemBytes::from_mb(32).pages(),
            boot_file_pages: MemBytes::from_mb(64).pages(),
            boot_anon_pages: MemBytes::from_mb(24).pages(),
            unaligned_io_fraction: 0.0,
            oom_balloon_swap_limit: 10_240,
        }
    }

    /// A Windows Server 2012-like guest: a slice of its disk traffic is
    /// not 4 KiB aligned, defeating the Mapper for those requests (§5.4).
    pub fn windows_default() -> Self {
        GuestSpec {
            memory: MemBytes::from_gb(2),
            kernel_pages: MemBytes::from_mb(128).pages(),
            boot_file_pages: MemBytes::from_mb(256).pages(),
            boot_anon_pages: MemBytes::from_mb(192).pages(),
            unaligned_io_fraction: 0.05,
            ..GuestSpec::linux_default()
        }
    }

    /// A tiny guest for unit tests: 1 MiB of memory, 16 MiB of disk.
    pub fn small_test() -> Self {
        GuestSpec {
            memory: MemBytes::from_mb(1),
            disk: MemBytes::from_mb(16),
            swap: MemBytes::from_mb(2),
            file_readahead: 8,
            swap_readahead: 4,
            reclaim_batch: 8,
            kernel_pages: 16,
            boot_file_pages: 0,
            boot_anon_pages: 0,
            ..GuestSpec::linux_default()
        }
    }
}

impl Default for GuestSpec {
    fn default() -> Self {
        GuestSpec::linux_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_default_is_self_consistent() {
        let s = GuestSpec::linux_default();
        assert!(s.swap.pages() < s.disk.pages());
        assert!(s.kernel_pages + s.boot_file_pages + s.boot_anon_pages < s.memory.pages());
        assert_eq!(s.unaligned_io_fraction, 0.0);
    }

    #[test]
    fn windows_profile_issues_unaligned_io() {
        assert!(GuestSpec::windows_default().unaligned_io_fraction > 0.0);
    }
}
