//! The guest's own swap partition allocator.
//!
//! When a balloon squeezes the guest (or guest memory is simply too small
//! for its anonymous working set), the guest swaps process pages to its
//! swap partition — a region of its virtual disk. From the host's point of
//! view that is ordinary virtual-disk I/O.

use crate::process::ProcId;
use vswap_mem::{ContentLabel, Vpn};

/// What one occupied guest swap slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestSlotInfo {
    /// Owning guest process.
    pub proc: ProcId,
    /// Virtual page of that process.
    pub vpn: Vpn,
    /// Content stored in the slot.
    pub label: ContentLabel,
}

/// The guest swap partition: page-sized slots over a virtual-disk region.
///
/// # Examples
///
/// ```
/// use vswap_guestos::swap::GuestSlotInfo;
/// use vswap_guestos::{GuestSwap, ProcId};
/// use vswap_mem::{ContentLabel, Vpn};
///
/// let mut swap = GuestSwap::new(100, 4); // disk pages 100..104
/// let info = GuestSlotInfo { proc: ProcId::new(0), vpn: Vpn::new(1), label: ContentLabel::ZERO };
/// let slot = swap.alloc(info).unwrap();
/// assert_eq!(swap.image_page(slot), 100);
/// ```
#[derive(Debug, Clone)]
pub struct GuestSwap {
    base_page: u64,
    slots: Vec<Option<GuestSlotInfo>>,
    /// Free bitmap, one bit per slot; mirrors the host `SwapArea` shape
    /// so slot allocation is a word scan, not a tree walk per swap-out.
    free_bits: Vec<u64>,
    free_count: u64,
    cursor: u64,
    /// No free slot exists below `low_hint * 64`; lowered on free so the
    /// wrap scan stays amortized O(1).
    low_hint: usize,
}

impl GuestSwap {
    /// Creates a swap partition of `pages` slots whose first slot lives at
    /// virtual-disk page `base_page`.
    pub fn new(base_page: u64, pages: u64) -> Self {
        let words = (pages as usize).div_ceil(64);
        let mut free_bits = vec![u64::MAX; words];
        let tail = pages % 64;
        if tail != 0 {
            free_bits[words - 1] = (1u64 << tail) - 1;
        }
        GuestSwap {
            base_page,
            slots: vec![None; pages as usize],
            free_bits,
            free_count: pages,
            cursor: 0,
            low_hint: 0,
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Occupied slots.
    pub fn used(&self) -> u64 {
        self.capacity() - self.free_count
    }

    /// First free slot at or after `start`, if any.
    fn next_free_from(&self, start: u64) -> Option<u64> {
        let mut word = start as usize / 64;
        if word >= self.free_bits.len() {
            return None;
        }
        let mut mask = self.free_bits[word] & !((1u64 << (start % 64)) - 1);
        loop {
            if mask != 0 {
                return Some((word as u64) * 64 + u64::from(mask.trailing_zeros()));
            }
            word += 1;
            if word >= self.free_bits.len() {
                return None;
            }
            mask = self.free_bits[word];
        }
    }

    /// Allocates a slot (cursor scan with wrap, like the host allocator).
    pub fn alloc(&mut self, info: GuestSlotInfo) -> Option<u64> {
        if self.free_count == 0 {
            return None;
        }
        let slot = self
            .next_free_from(self.cursor)
            .or_else(|| self.next_free_from((self.low_hint as u64) * 64))
            .expect("free_count > 0");
        self.free_bits[slot as usize / 64] &= !(1u64 << (slot % 64));
        self.free_count -= 1;
        self.cursor = slot + 1;
        self.slots[slot as usize] = Some(info);
        Some(slot)
    }

    /// Frees a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free.
    pub fn free(&mut self, slot: u64) {
        let entry = &mut self.slots[slot as usize];
        assert!(entry.is_some(), "freeing free guest swap slot {slot}");
        *entry = None;
        debug_assert_eq!(self.free_bits[slot as usize / 64] & (1u64 << (slot % 64)), 0);
        self.free_bits[slot as usize / 64] |= 1u64 << (slot % 64);
        self.free_count += 1;
        self.low_hint = self.low_hint.min(slot as usize / 64);
    }

    /// Contents of a slot, or `None` if free.
    pub fn get(&self, slot: u64) -> Option<GuestSlotInfo> {
        self.slots[slot as usize]
    }

    /// The virtual-disk image page a slot occupies.
    pub fn image_page(&self, slot: u64) -> u64 {
        self.base_page + slot
    }

    /// Occupied slots in `[start, start + window)`, for guest swap
    /// readahead.
    pub fn window(&self, start: u64, window: u64) -> Vec<(u64, GuestSlotInfo)> {
        let end = (start + window).min(self.capacity());
        (start..end).filter_map(|s| self.slots[s as usize].map(|i| (s, i))).collect()
    }

    /// Snapshots the occupied slots of `[start, start + window)` into
    /// `out` (cleared first) — the readahead loop mutates the partition
    /// while it walks, so it needs a stable copy, not a borrow.
    pub fn window_into(&self, start: u64, window: u64, out: &mut Vec<(u64, GuestSlotInfo)>) {
        out.clear();
        let end = (start + window).min(self.capacity());
        out.extend((start..end).filter_map(|s| self.slots[s as usize].map(|i| (s, i))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(vpn: u64) -> GuestSlotInfo {
        GuestSlotInfo { proc: ProcId::new(0), vpn: Vpn::new(vpn), label: ContentLabel::ZERO }
    }

    #[test]
    fn slots_map_to_image_pages() {
        let mut swap = GuestSwap::new(50, 4);
        let a = swap.alloc(info(0)).unwrap();
        let b = swap.alloc(info(1)).unwrap();
        assert_eq!(swap.image_page(a), 50);
        assert_eq!(swap.image_page(b), 51);
    }

    #[test]
    fn alloc_free_cycle() {
        let mut swap = GuestSwap::new(0, 2);
        let a = swap.alloc(info(0)).unwrap();
        swap.alloc(info(1)).unwrap();
        assert_eq!(swap.alloc(info(2)), None);
        swap.free(a);
        assert_eq!(swap.used(), 1);
        assert_eq!(swap.alloc(info(3)), Some(a));
    }

    #[test]
    fn window_lists_occupied() {
        let mut swap = GuestSwap::new(0, 8);
        swap.alloc(info(0)).unwrap();
        swap.alloc(info(1)).unwrap();
        swap.free(0);
        let w = swap.window(0, 8);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, 1);
    }
}
