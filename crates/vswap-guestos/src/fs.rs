//! A minimal extent filesystem over the guest's virtual disk.
//!
//! Files are contiguous page runs allocated front-to-back, matching the
//! paper's observation that "contiguous file pages tend to be contiguous
//! on disk" — the property that makes image-side readahead effective and
//! whose loss in the host swap area is the decayed-sequentiality
//! pathology.

use std::error::Error;
use std::fmt;

/// Identifies a guest file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(u32);

impl FileId {
    /// Returns the raw identifier.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Error returned when the filesystem runs out of space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsFullError {
    requested: u64,
    free: u64,
}

impl fmt::Display for FsFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filesystem full: {} pages requested, {} free", self.requested, self.free)
    }
}

impl Error for FsFullError {}

#[derive(Debug, Clone, Copy)]
struct Extent {
    start: u64,
    pages: u64,
}

/// Allocates files as contiguous extents of virtual-disk pages.
///
/// # Examples
///
/// ```
/// use vswap_guestos::GuestFs;
///
/// let mut fs = GuestFs::new(100, 1000); // data pages 100..1000
/// let f = fs.create(50)?;
/// assert_eq!(fs.image_page(f, 0), 100);
/// assert_eq!(fs.len(f), 50);
/// # Ok::<(), vswap_guestos::fs::FsFullError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GuestFs {
    files: Vec<Extent>,
    next_page: u64,
    end_page: u64,
}

impl GuestFs {
    /// Creates a filesystem over virtual-disk pages `[data_start, data_end)`.
    ///
    /// # Panics
    ///
    /// Panics if `data_start > data_end`.
    pub fn new(data_start: u64, data_end: u64) -> Self {
        assert!(data_start <= data_end, "inverted data region");
        GuestFs { files: Vec::new(), next_page: data_start, end_page: data_end }
    }

    /// Creates a file of `pages` pages.
    ///
    /// # Errors
    ///
    /// Returns [`FsFullError`] if the data region cannot hold the file.
    pub fn create(&mut self, pages: u64) -> Result<FileId, FsFullError> {
        let free = self.end_page - self.next_page;
        if pages > free {
            return Err(FsFullError { requested: pages, free });
        }
        let id = FileId(self.files.len() as u32);
        self.files.push(Extent { start: self.next_page, pages });
        self.next_page += pages;
        Ok(id)
    }

    /// Size of a file in pages.
    ///
    /// # Panics
    ///
    /// Panics if `file` is unknown.
    pub fn len(&self, file: FileId) -> u64 {
        self.files[file.0 as usize].pages
    }

    /// Filesystems are never "empty" as collections; provided for lint
    /// symmetry with [`GuestFs::len`] and always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Translates a page offset within a file to a virtual-disk image
    /// page.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is past the end of the file.
    pub fn image_page(&self, file: FileId, offset: u64) -> u64 {
        let e = self.files[file.0 as usize];
        assert!(offset < e.pages, "offset {offset} past end of {file}");
        e.start + offset
    }

    /// Free data pages remaining.
    pub fn free_pages(&self) -> u64 {
        self.end_page - self.next_page
    }

    /// Number of files created.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_are_contiguous_and_disjoint() {
        let mut fs = GuestFs::new(10, 100);
        let a = fs.create(20).unwrap();
        let b = fs.create(30).unwrap();
        assert_eq!(fs.image_page(a, 0), 10);
        assert_eq!(fs.image_page(a, 19), 29);
        assert_eq!(fs.image_page(b, 0), 30);
        assert_eq!(fs.free_pages(), 40);
        assert_eq!(fs.file_count(), 2);
    }

    #[test]
    fn create_fails_when_full() {
        let mut fs = GuestFs::new(0, 10);
        fs.create(8).unwrap();
        let err = fs.create(3).unwrap_err();
        assert!(err.to_string().contains("3 pages requested"));
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn offset_out_of_file_panics() {
        let mut fs = GuestFs::new(0, 10);
        let f = fs.create(2).unwrap();
        let _ = fs.image_page(f, 2);
    }
}
