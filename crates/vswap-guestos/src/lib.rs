//! The guest operating-system model.
//!
//! An *uncooperative* guest is the other half of every pathology in the
//! paper: it caches file content aggressively because it believes memory is
//! plentiful (driving the host into uncooperative swapping), recycles page
//! frames it silently dropped (stale and false swap reads), and — when a
//! balloon squeezes it — runs its own reclaim, swap, and, in extremis, its
//! OOM killer (§2.4 over-ballooning).
//!
//! The guest kernel runs against an abstract [`VirtualHardware`] bus; the
//! real machine (in `vswap-core`) implements the bus on top of the host
//! kernel, while unit tests here use [`MockHardware`].
//!
//! Modules:
//!
//! * [`hardware`] — the [`VirtualHardware`] trait and a mock,
//! * [`spec`] — guest size/behaviour parameters,
//! * [`fs`] — a trivial extent filesystem over the virtual disk,
//! * [`swap`] — the guest's own swap-slot allocator,
//! * [`process`] — guest processes and their anonymous memory,
//! * [`kernel`] — the guest kernel proper: page cache, readahead, reclaim,
//!   balloon driver, OOM killer,
//! * [`program`] — the [`GuestProgram`] trait workloads implement, and the
//!   [`GuestCtx`] facade they are driven through.
//!
//! # Examples
//!
//! ```
//! use vswap_guestos::{GuestKernel, GuestSpec, MockHardware};
//!
//! let mut hw = MockHardware::new(4096);
//! let mut guest = GuestKernel::new(GuestSpec::small_test(), 7);
//! let file = guest.create_file(64)?;
//! guest.read_file(&mut hw, file, 0, 64)?;
//! assert!(guest.stats().cache_misses > 0);
//! // Second read is served from the guest page cache.
//! let misses = guest.stats().cache_misses;
//! guest.read_file(&mut hw, file, 0, 64)?;
//! assert_eq!(guest.stats().cache_misses, misses);
//! # Ok::<(), vswap_guestos::GuestError>(())
//! ```

#![warn(missing_docs)]

pub mod fs;
pub mod hardware;
pub mod kernel;
pub mod process;
pub mod program;
pub mod spec;
pub mod stats;
pub mod swap;

pub use fs::{FileId, GuestFs};
pub use hardware::{AccessResult, MockHardware, VirtualHardware};
pub use kernel::{GuestError, GuestKernel, GuestPageState};
pub use process::ProcId;
pub use program::{GuestCtx, GuestProgram, StepOutcome};
pub use spec::GuestSpec;
pub use stats::GuestStats;
pub use swap::GuestSwap;
