//! The bus between the guest kernel and the (virtual) machine beneath it.

use sim_core::SimDuration;
use std::collections::HashMap;
use vswap_mem::{ContentLabel, Gfn, LabelGen};

/// The outcome of a guest memory access as seen by the guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Time the access took (zero on a plain hit, large if the host had to
    /// fault the page in from disk).
    pub latency: SimDuration,
    /// Content of the page after the access.
    pub label: ContentLabel,
}

/// What the guest kernel can ask of the platform it runs on.
///
/// `vswap-core` implements this on top of the host kernel (with the Swap
/// Mapper and False Reads Preventer interposed when enabled);
/// [`MockHardware`] implements it for unit tests of guest logic.
///
/// All methods are infallible: hardware does not fail in this model, it is
/// only slow.
pub trait VirtualHardware {
    /// Guest CPU load from a guest-physical page.
    fn mem_read(&mut self, gfn: Gfn) -> AccessResult;

    /// Guest CPU store to part of a guest-physical page. The page content
    /// changes to a fresh label.
    fn mem_write(&mut self, gfn: Gfn) -> AccessResult;

    /// Guest CPU overwrite of an *entire* guest-physical page with content
    /// `label` (page zeroing, COW copies, page migration) — the operation
    /// behind false swap reads, and the one the False Reads Preventer
    /// intercepts.
    fn mem_overwrite(&mut self, gfn: Gfn, label: ContentLabel) -> AccessResult;

    /// Virtual-disk read of consecutive image pages starting at
    /// `image_page` into `gfns`. `aligned` is false when the guest issued
    /// a request not aligned to 4 KiB (Windows guests, §5.4), which the
    /// Mapper cannot track.
    fn disk_read(&mut self, image_page: u64, gfns: &[Gfn], aligned: bool) -> SimDuration;

    /// Virtual-disk write of `gfns` to consecutive image pages starting at
    /// `image_page`.
    fn disk_write(&mut self, gfns: &[Gfn], image_page: u64, aligned: bool) -> SimDuration;

    /// Virtual-disk write the guest does *not* wait on (write-behind
    /// eviction, asynchronous swap-out): the device works, but no thread
    /// blocks, so the platform must not book the cost as disk-wait time.
    fn disk_write_behind(&mut self, gfns: &[Gfn], image_page: u64, aligned: bool) -> SimDuration {
        self.disk_write(gfns, image_page, aligned)
    }

    /// The balloon driver pinned `gfn` and donates it to the host.
    fn balloon_release(&mut self, gfn: Gfn);

    /// Content currently stored at `image_page` of this guest's disk.
    fn image_label(&self, image_page: u64) -> ContentLabel;

    /// Draws a fresh content label for data the guest is about to create.
    fn fresh_label(&mut self) -> ContentLabel;

    /// Reports a guest-kernel observability event. The platform stamps it
    /// with the current simulated time and VM identity; the default
    /// implementation discards it, so mocks and tests are unaffected.
    fn observe(&mut self, event: sim_obs::Event) {
        let _ = event;
    }
}

/// An idealized machine for guest-kernel unit tests: infinite memory (no
/// host swapping), fixed disk latency, full content tracking.
///
/// # Examples
///
/// ```
/// use vswap_guestos::{MockHardware, VirtualHardware};
/// use vswap_mem::Gfn;
///
/// let mut hw = MockHardware::new(128);
/// let label = hw.image_label(5);
/// hw.disk_read(5, &[Gfn::new(0)], true);
/// assert_eq!(hw.mem_read(Gfn::new(0)).label, label);
/// ```
#[derive(Debug)]
pub struct MockHardware {
    image: Vec<ContentLabel>,
    mem: HashMap<Gfn, ContentLabel>,
    labels: LabelGen,
    disk_latency: SimDuration,
    /// Every `balloon_release`d gfn, in order.
    pub released: Vec<Gfn>,
    /// Count of disk read requests.
    pub disk_reads: u64,
    /// Count of disk write requests.
    pub disk_writes: u64,
    /// Count of full-page overwrites.
    pub overwrites: u64,
}

impl MockHardware {
    /// Creates a mock with an image of `image_pages` pages of distinct
    /// content and a flat 100 µs disk latency.
    pub fn new(image_pages: u64) -> Self {
        let mut labels = LabelGen::new();
        MockHardware {
            image: (0..image_pages).map(|_| labels.fresh()).collect(),
            mem: HashMap::new(),
            labels,
            disk_latency: SimDuration::from_micros(100),
            released: Vec::new(),
            disk_reads: 0,
            disk_writes: 0,
            overwrites: 0,
        }
    }
}

impl VirtualHardware for MockHardware {
    fn mem_read(&mut self, gfn: Gfn) -> AccessResult {
        let label = self.mem.get(&gfn).copied().unwrap_or(ContentLabel::ZERO);
        AccessResult { latency: SimDuration::ZERO, label }
    }

    fn mem_write(&mut self, gfn: Gfn) -> AccessResult {
        let label = self.labels.fresh();
        self.mem.insert(gfn, label);
        AccessResult { latency: SimDuration::ZERO, label }
    }

    fn mem_overwrite(&mut self, gfn: Gfn, label: ContentLabel) -> AccessResult {
        self.overwrites += 1;
        self.mem.insert(gfn, label);
        AccessResult { latency: SimDuration::ZERO, label }
    }

    fn disk_read(&mut self, image_page: u64, gfns: &[Gfn], _aligned: bool) -> SimDuration {
        self.disk_reads += 1;
        for (i, &gfn) in gfns.iter().enumerate() {
            let label = self.image[(image_page as usize) + i];
            self.mem.insert(gfn, label);
        }
        self.disk_latency
    }

    fn disk_write(&mut self, gfns: &[Gfn], image_page: u64, _aligned: bool) -> SimDuration {
        self.disk_writes += 1;
        for (i, &gfn) in gfns.iter().enumerate() {
            let label = self.mem.get(&gfn).copied().unwrap_or(ContentLabel::ZERO);
            self.image[(image_page as usize) + i] = label;
        }
        self.disk_latency
    }

    fn balloon_release(&mut self, gfn: Gfn) {
        self.released.push(gfn);
    }

    fn image_label(&self, image_page: u64) -> ContentLabel {
        self.image[image_page as usize]
    }

    fn fresh_label(&mut self) -> ContentLabel {
        self.labels.fresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_round_trips_content_through_disk() {
        let mut hw = MockHardware::new(8);
        let gfn = Gfn::new(1);
        let w = hw.mem_write(gfn);
        hw.disk_write(&[gfn], 3, true);
        assert_eq!(hw.image_label(3), w.label);
        let other = Gfn::new(2);
        hw.disk_read(3, &[other], true);
        assert_eq!(hw.mem_read(other).label, w.label);
        assert_eq!(hw.disk_reads, 1);
        assert_eq!(hw.disk_writes, 1);
    }

    #[test]
    fn mock_overwrite_replaces_content() {
        let mut hw = MockHardware::new(1);
        let gfn = Gfn::new(0);
        hw.mem_write(gfn);
        let l = hw.fresh_label();
        hw.mem_overwrite(gfn, l);
        assert_eq!(hw.mem_read(gfn).label, l);
        assert_eq!(hw.overwrites, 1);
    }

    #[test]
    fn unmapped_memory_reads_zero() {
        let mut hw = MockHardware::new(1);
        assert!(hw.mem_read(Gfn::new(7)).label.is_zero_page());
    }
}
