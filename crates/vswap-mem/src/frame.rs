//! The host physical frame table.
//!
//! Every 4 KiB of host DRAM is a frame with an owner, usage bits, and a
//! content label. The host reclaim algorithm (in `vswap-hostos`) walks this
//! table; the Mapper changes how frames are *classified* (named vs
//! anonymous), which is the crux of the "false page anonymity" pathology.

use crate::addr::{Gfn, VmId};
use crate::content::ContentLabel;
use std::fmt;

/// Identifies one host physical frame.
///
/// # Examples
///
/// ```
/// use vswap_mem::FrameId;
///
/// let f = FrameId::new(42);
/// assert_eq!(f.index(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u32);

impl FrameId {
    /// Creates a frame identifier.
    pub const fn new(id: u32) -> Self {
        FrameId(id)
    }

    /// Returns the raw identifier.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// Who a host frame currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameOwner {
    /// Unallocated.
    Free,
    /// Backs a guest-physical page of a VM. Classified *anonymous* by the
    /// baseline host; the Mapper may re-classify it as named.
    Guest {
        /// Owning VM.
        vm: VmId,
        /// Guest frame number the frame backs.
        gfn: Gfn,
    },
    /// Holds a disk-image block in the host page cache (Mapper-managed
    /// named page that currently has no guest mapping, mid-transition).
    PageCache {
        /// Owning VM (whose disk image the block belongs to).
        vm: VmId,
        /// Page index inside that VM's disk image.
        image_page: u64,
    },
    /// Part of the hosted hypervisor's executable (QEMU code): the only
    /// *named* memory in a baseline guest address space, and therefore the
    /// host's preferred reclaim victim — the "false page anonymity" twist.
    HypervisorCode {
        /// VM whose QEMU process the code page belongs to.
        vm: VmId,
        /// Code page index within the hypervisor image.
        page: u64,
    },
    /// A False Reads Preventer emulation buffer.
    WriteBuffer {
        /// VM whose write is being emulated.
        vm: VmId,
        /// Guest frame number being emulated.
        gfn: Gfn,
    },
}

impl FrameOwner {
    /// True if the frame is *named* (file-backed) from the host kernel's
    /// point of view, i.e. can be reclaimed by discarding.
    pub fn is_named(self) -> bool {
        matches!(self, FrameOwner::PageCache { .. } | FrameOwner::HypervisorCode { .. })
    }
}

#[derive(Debug, Clone)]
struct Frame {
    owner: FrameOwner,
    accessed: bool,
    dirty: bool,
    label: ContentLabel,
}

/// Host DRAM: a fixed-size table of frames with a free list.
///
/// # Examples
///
/// ```
/// use vswap_mem::{FrameOwner, Gfn, HostFrameTable, VmId};
///
/// let mut table = HostFrameTable::new(4);
/// let f = table.alloc(FrameOwner::Guest { vm: VmId::new(0), gfn: Gfn::new(0) }).unwrap();
/// table.set_dirty(f, true);
/// assert!(table.dirty(f));
/// table.free(f);
/// assert_eq!(table.owner(f), FrameOwner::Free);
/// ```
#[derive(Debug, Clone)]
pub struct HostFrameTable {
    frames: Vec<Frame>,
    free: Vec<u32>,
}

impl HostFrameTable {
    /// Creates a table of `total` free frames.
    pub fn new(total: u64) -> Self {
        let frames = vec![
            Frame {
                owner: FrameOwner::Free,
                accessed: false,
                dirty: false,
                label: ContentLabel::ZERO,
            };
            total as usize
        ];
        // Pop from the back; lowest frame numbers are handed out first.
        let free = (0..total as u32).rev().collect();
        HostFrameTable { frames, free }
    }

    /// Total number of frames (free + allocated).
    pub fn total_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free.len() as u64
    }

    /// Allocates a frame for `owner`, or `None` if DRAM is exhausted.
    /// The new frame's usage bits are clear and its content is the zero
    /// page.
    pub fn alloc(&mut self, owner: FrameOwner) -> Option<FrameId> {
        debug_assert!(!matches!(owner, FrameOwner::Free), "cannot alloc a Free frame");
        let id = self.free.pop()?;
        let frame = &mut self.frames[id as usize];
        frame.owner = owner;
        frame.accessed = false;
        frame.dirty = false;
        frame.label = ContentLabel::ZERO;
        Some(FrameId(id))
    }

    /// Releases a frame back to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already free.
    pub fn free(&mut self, id: FrameId) {
        let frame = &mut self.frames[id.index()];
        assert!(!matches!(frame.owner, FrameOwner::Free), "double free of {id}");
        frame.owner = FrameOwner::Free;
        frame.accessed = false;
        frame.dirty = false;
        frame.label = ContentLabel::ZERO;
        self.free.push(id.get());
    }

    /// Returns the frame's owner.
    pub fn owner(&self, id: FrameId) -> FrameOwner {
        self.frames[id.index()].owner
    }

    /// Re-labels the frame's owner (e.g. a page-cache frame becomes a guest
    /// frame when the Mapper maps it into the VM).
    ///
    /// # Panics
    ///
    /// Panics if the frame is free or the new owner is `Free` (use
    /// [`HostFrameTable::free`]).
    pub fn set_owner(&mut self, id: FrameId, owner: FrameOwner) {
        assert!(!matches!(owner, FrameOwner::Free), "use free() to release frames");
        let frame = &mut self.frames[id.index()];
        assert!(!matches!(frame.owner, FrameOwner::Free), "cannot retag a free frame");
        frame.owner = owner;
    }

    /// Returns the frame's accessed (referenced) bit.
    pub fn accessed(&self, id: FrameId) -> bool {
        self.frames[id.index()].accessed
    }

    /// Sets or clears the accessed bit.
    pub fn set_accessed(&mut self, id: FrameId, accessed: bool) {
        self.frames[id.index()].accessed = accessed;
    }

    /// Returns the frame's dirty bit.
    pub fn dirty(&self, id: FrameId) -> bool {
        self.frames[id.index()].dirty
    }

    /// Sets or clears the dirty bit.
    pub fn set_dirty(&mut self, id: FrameId, dirty: bool) {
        self.frames[id.index()].dirty = dirty;
    }

    /// Returns the frame's content label.
    pub fn label(&self, id: FrameId) -> ContentLabel {
        self.frames[id.index()].label
    }

    /// Replaces the frame's content label (the frame was written or filled
    /// from disk).
    pub fn set_label(&mut self, id: FrameId, label: ContentLabel) {
        self.frames[id.index()].label = label;
    }

    /// Iterates over all allocated frames as `(id, owner)`.
    pub fn iter_allocated(&self) -> impl Iterator<Item = (FrameId, FrameOwner)> + '_ {
        self.frames.iter().enumerate().filter_map(|(i, f)| {
            if matches!(f.owner, FrameOwner::Free) {
                None
            } else {
                Some((FrameId(i as u32), f.owner))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guest_owner(gfn: u64) -> FrameOwner {
        FrameOwner::Guest { vm: VmId::new(0), gfn: Gfn::new(gfn) }
    }

    #[test]
    fn alloc_until_exhaustion() {
        let mut t = HostFrameTable::new(3);
        assert!(t.alloc(guest_owner(0)).is_some());
        assert!(t.alloc(guest_owner(1)).is_some());
        assert!(t.alloc(guest_owner(2)).is_some());
        assert!(t.alloc(guest_owner(3)).is_none());
        assert_eq!(t.free_frames(), 0);
    }

    #[test]
    fn low_frames_first() {
        let mut t = HostFrameTable::new(4);
        let f = t.alloc(guest_owner(0)).unwrap();
        assert_eq!(f.get(), 0);
    }

    #[test]
    fn free_recycles() {
        let mut t = HostFrameTable::new(1);
        let f = t.alloc(guest_owner(0)).unwrap();
        t.set_dirty(f, true);
        t.set_accessed(f, true);
        t.free(f);
        let g = t.alloc(guest_owner(1)).unwrap();
        assert_eq!(f, g);
        assert!(!t.dirty(g), "recycled frame must have clear bits");
        assert!(!t.accessed(g));
        assert_eq!(t.label(g), ContentLabel::ZERO);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut t = HostFrameTable::new(1);
        let f = t.alloc(guest_owner(0)).unwrap();
        t.free(f);
        t.free(f);
    }

    #[test]
    fn owner_classification() {
        let vm = VmId::new(0);
        assert!(!FrameOwner::Guest { vm, gfn: Gfn::new(0) }.is_named());
        assert!(FrameOwner::PageCache { vm, image_page: 0 }.is_named());
        assert!(FrameOwner::HypervisorCode { vm, page: 0 }.is_named());
        assert!(!FrameOwner::WriteBuffer { vm, gfn: Gfn::new(0) }.is_named());
        assert!(!FrameOwner::Free.is_named());
    }

    #[test]
    fn retagging_owner() {
        let mut t = HostFrameTable::new(1);
        let vm = VmId::new(0);
        let f = t.alloc(FrameOwner::PageCache { vm, image_page: 9 }).unwrap();
        t.set_owner(f, FrameOwner::Guest { vm, gfn: Gfn::new(3) });
        assert_eq!(t.owner(f), FrameOwner::Guest { vm, gfn: Gfn::new(3) });
    }

    #[test]
    fn iter_allocated_skips_free() {
        let mut t = HostFrameTable::new(3);
        let a = t.alloc(guest_owner(0)).unwrap();
        let b = t.alloc(guest_owner(1)).unwrap();
        t.free(a);
        let allocated: Vec<FrameId> = t.iter_allocated().map(|(id, _)| id).collect();
        assert_eq!(allocated, vec![b]);
    }
}
