//! The host physical frame table.
//!
//! Every 4 KiB of host DRAM is a frame with an owner, usage bits, and a
//! content label. The host reclaim algorithm (in `vswap-hostos`) walks this
//! table; the Mapper changes how frames are *classified* (named vs
//! anonymous), which is the crux of the "false page anonymity" pathology.

use crate::addr::{Gfn, VmId};
use crate::content::ContentLabel;
use std::fmt;

/// Identifies one host physical frame.
///
/// # Examples
///
/// ```
/// use vswap_mem::FrameId;
///
/// let f = FrameId::new(42);
/// assert_eq!(f.index(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u32);

impl FrameId {
    /// Creates a frame identifier.
    pub const fn new(id: u32) -> Self {
        FrameId(id)
    }

    /// Returns the raw identifier.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// Who a host frame currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameOwner {
    /// Unallocated.
    Free,
    /// Backs a guest-physical page of a VM. Classified *anonymous* by the
    /// baseline host; the Mapper may re-classify it as named.
    Guest {
        /// Owning VM.
        vm: VmId,
        /// Guest frame number the frame backs.
        gfn: Gfn,
    },
    /// Holds a disk-image block in the host page cache (Mapper-managed
    /// named page that currently has no guest mapping, mid-transition).
    PageCache {
        /// Owning VM (whose disk image the block belongs to).
        vm: VmId,
        /// Page index inside that VM's disk image.
        image_page: u64,
    },
    /// Part of the hosted hypervisor's executable (QEMU code): the only
    /// *named* memory in a baseline guest address space, and therefore the
    /// host's preferred reclaim victim — the "false page anonymity" twist.
    HypervisorCode {
        /// VM whose QEMU process the code page belongs to.
        vm: VmId,
        /// Code page index within the hypervisor image.
        page: u64,
    },
    /// A False Reads Preventer emulation buffer.
    WriteBuffer {
        /// VM whose write is being emulated.
        vm: VmId,
        /// Guest frame number being emulated.
        gfn: Gfn,
    },
}

impl FrameOwner {
    /// True if the frame is *named* (file-backed) from the host kernel's
    /// point of view, i.e. can be reclaimed by discarding.
    pub fn is_named(self) -> bool {
        matches!(self, FrameOwner::PageCache { .. } | FrameOwner::HypervisorCode { .. })
    }
}

// Packed owner encoding: `0` is `Free`, so a freshly zeroed table is a
// table of free frames and `HostFrameTable::new` never touches its pages.
// Bits 0..3 hold the owner kind, bits 3..32 the VM id, bits 32..64 the
// owner-specific page number (gfn / image page / code page).
const KIND_GUEST: u64 = 1;
const KIND_PAGE_CACHE: u64 = 2;
const KIND_HYPERVISOR_CODE: u64 = 3;
const KIND_WRITE_BUFFER: u64 = 4;
const KIND_BITS: u64 = 0x7;
const VM_SHIFT: u32 = 3;
const VM_BITS: u64 = (1 << 29) - 1;
const PAGE_SHIFT: u32 = 32;

fn pack_owner(owner: FrameOwner) -> u64 {
    let (kind, vm, page) = match owner {
        FrameOwner::Free => return 0,
        FrameOwner::Guest { vm, gfn } => (KIND_GUEST, vm, gfn.get()),
        FrameOwner::PageCache { vm, image_page } => (KIND_PAGE_CACHE, vm, image_page),
        FrameOwner::HypervisorCode { vm, page } => (KIND_HYPERVISOR_CODE, vm, page),
        FrameOwner::WriteBuffer { vm, gfn } => (KIND_WRITE_BUFFER, vm, gfn.get()),
    };
    debug_assert!(u64::from(vm.get()) <= VM_BITS, "vm id out of packed range");
    debug_assert!(page < 1 << 32, "owner page out of packed range");
    kind | (u64::from(vm.get()) << VM_SHIFT) | (page << PAGE_SHIFT)
}

fn unpack_owner(bits: u64) -> FrameOwner {
    if bits == 0 {
        return FrameOwner::Free;
    }
    let vm = VmId::new(((bits >> VM_SHIFT) & VM_BITS) as u32);
    let page = bits >> PAGE_SHIFT;
    match bits & KIND_BITS {
        KIND_GUEST => FrameOwner::Guest { vm, gfn: Gfn::new(page) },
        KIND_PAGE_CACHE => FrameOwner::PageCache { vm, image_page: page },
        KIND_HYPERVISOR_CODE => FrameOwner::HypervisorCode { vm, page },
        KIND_WRITE_BUFFER => FrameOwner::WriteBuffer { vm, gfn: Gfn::new(page) },
        kind => unreachable!("corrupt frame owner kind {kind}"),
    }
}

/// Host DRAM: a fixed-size table of frames with a bitmap free-frame
/// allocator.
///
/// One `u64` word tracks 64 frames (bit set = free). Allocation scans
/// words with `trailing_zeros`, starting from a search hint that is
/// kept at or below the lowest word holding a free bit, so the scan is
/// amortized O(1) and frames are always handed out lowest-index-first.
///
/// # Examples
///
/// ```
/// use vswap_mem::{FrameOwner, Gfn, HostFrameTable, VmId};
///
/// let mut table = HostFrameTable::new(4);
/// let f = table.alloc(FrameOwner::Guest { vm: VmId::new(0), gfn: Gfn::new(0) }).unwrap();
/// table.set_dirty(f, true);
/// assert!(table.dirty(f));
/// table.free(f);
/// assert_eq!(table.owner(f), FrameOwner::Free);
/// ```
#[derive(Debug, Clone)]
pub struct HostFrameTable {
    total: u64,
    /// Packed owner per frame; `0` = free. Structure-of-arrays so the
    /// empty table is all-zero bytes and construction is `alloc_zeroed`
    /// (lazily mapped), not an eager fill over hundreds of MiB of DRAM
    /// metadata per host.
    owners: Vec<u64>,
    /// Accessed (referenced) bit per frame, one bit per frame.
    accessed_bits: Vec<u64>,
    /// Dirty bit per frame, one bit per frame.
    dirty_bits: Vec<u64>,
    /// Raw content label per frame (`ContentLabel::ZERO` is 0).
    labels: Vec<u64>,
    /// Bit set = frame free. Word `w` covers frames `64*w .. 64*w+64`.
    /// Stored inverted-on-construction relative to the zero page (a fresh
    /// table is all-free), but at one bit per frame the fill is tiny.
    free_bits: Vec<u64>,
    free_count: u64,
    /// Invariant: no word below `hint` has a free bit.
    hint: usize,
}

impl HostFrameTable {
    /// Creates a table of `total` free frames.
    pub fn new(total: u64) -> Self {
        let words = (total as usize).div_ceil(64);
        let mut free_bits = vec![u64::MAX; words];
        // Clear the tail bits past `total` in the last word.
        let tail = (total % 64) as u32;
        if tail != 0 {
            if let Some(last) = free_bits.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        HostFrameTable {
            total,
            owners: vec![0; total as usize],
            accessed_bits: vec![0; words],
            dirty_bits: vec![0; words],
            labels: vec![0; total as usize],
            free_bits,
            free_count: total,
            hint: 0,
        }
    }

    /// Total number of frames (free + allocated).
    pub fn total_frames(&self) -> u64 {
        self.total
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_count
    }

    /// Allocates a frame for `owner`, or `None` if DRAM is exhausted.
    /// The lowest-numbered free frame is handed out. The new frame's
    /// usage bits are clear and its content is the zero page.
    pub fn alloc(&mut self, owner: FrameOwner) -> Option<FrameId> {
        debug_assert!(!matches!(owner, FrameOwner::Free), "cannot alloc a Free frame");
        if self.free_count == 0 {
            return None;
        }
        let mut w = self.hint;
        while self.free_bits[w] == 0 {
            w += 1;
        }
        self.hint = w;
        let bit = self.free_bits[w].trailing_zeros();
        self.free_bits[w] &= !(1u64 << bit);
        self.free_count -= 1;
        let id = (w as u32) * 64 + bit;
        self.owners[id as usize] = pack_owner(owner);
        self.accessed_bits[w] &= !(1u64 << bit);
        self.dirty_bits[w] &= !(1u64 << bit);
        self.labels[id as usize] = 0;
        Some(FrameId(id))
    }

    /// Releases a frame back to the free bitmap.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already free.
    pub fn free(&mut self, id: FrameId) {
        assert!(self.owners[id.index()] != 0, "double free of {id}");
        let w = id.index() / 64;
        let bit = id.index() % 64;
        self.owners[id.index()] = 0;
        self.accessed_bits[w] &= !(1u64 << bit);
        self.dirty_bits[w] &= !(1u64 << bit);
        self.labels[id.index()] = 0;
        debug_assert_eq!(self.free_bits[w] & (1u64 << bit), 0, "free bit already set for {id}");
        self.free_bits[w] |= 1u64 << bit;
        self.free_count += 1;
        // Keep the hint at or below the lowest free word.
        if w < self.hint {
            self.hint = w;
        }
    }

    /// Returns the frame's owner.
    pub fn owner(&self, id: FrameId) -> FrameOwner {
        unpack_owner(self.owners[id.index()])
    }

    /// Re-labels the frame's owner (e.g. a page-cache frame becomes a guest
    /// frame when the Mapper maps it into the VM).
    ///
    /// # Panics
    ///
    /// Panics if the frame is free or the new owner is `Free` (use
    /// [`HostFrameTable::free`]).
    pub fn set_owner(&mut self, id: FrameId, owner: FrameOwner) {
        assert!(!matches!(owner, FrameOwner::Free), "use free() to release frames");
        assert!(self.owners[id.index()] != 0, "cannot retag a free frame");
        self.owners[id.index()] = pack_owner(owner);
    }

    /// Returns the frame's accessed (referenced) bit.
    pub fn accessed(&self, id: FrameId) -> bool {
        self.accessed_bits[id.index() / 64] & (1u64 << (id.index() % 64)) != 0
    }

    /// Sets or clears the accessed bit.
    pub fn set_accessed(&mut self, id: FrameId, accessed: bool) {
        let mask = 1u64 << (id.index() % 64);
        if accessed {
            self.accessed_bits[id.index() / 64] |= mask;
        } else {
            self.accessed_bits[id.index() / 64] &= !mask;
        }
    }

    /// Returns the frame's dirty bit.
    pub fn dirty(&self, id: FrameId) -> bool {
        self.dirty_bits[id.index() / 64] & (1u64 << (id.index() % 64)) != 0
    }

    /// Sets or clears the dirty bit.
    pub fn set_dirty(&mut self, id: FrameId, dirty: bool) {
        let mask = 1u64 << (id.index() % 64);
        if dirty {
            self.dirty_bits[id.index() / 64] |= mask;
        } else {
            self.dirty_bits[id.index() / 64] &= !mask;
        }
    }

    /// Returns the frame's content label.
    pub fn label(&self, id: FrameId) -> ContentLabel {
        ContentLabel::from_raw(self.labels[id.index()])
    }

    /// Replaces the frame's content label (the frame was written or filled
    /// from disk).
    pub fn set_label(&mut self, id: FrameId, label: ContentLabel) {
        self.labels[id.index()] = label.get();
    }

    /// Iterates over all allocated frames as `(id, owner)`.
    pub fn iter_allocated(&self) -> impl Iterator<Item = (FrameId, FrameOwner)> + '_ {
        self.owners.iter().enumerate().filter_map(|(i, &bits)| {
            if bits == 0 {
                None
            } else {
                Some((FrameId(i as u32), unpack_owner(bits)))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guest_owner(gfn: u64) -> FrameOwner {
        FrameOwner::Guest { vm: VmId::new(0), gfn: Gfn::new(gfn) }
    }

    #[test]
    fn alloc_until_exhaustion() {
        let mut t = HostFrameTable::new(3);
        assert!(t.alloc(guest_owner(0)).is_some());
        assert!(t.alloc(guest_owner(1)).is_some());
        assert!(t.alloc(guest_owner(2)).is_some());
        assert!(t.alloc(guest_owner(3)).is_none());
        assert_eq!(t.free_frames(), 0);
    }

    #[test]
    fn low_frames_first() {
        let mut t = HostFrameTable::new(4);
        let f = t.alloc(guest_owner(0)).unwrap();
        assert_eq!(f.get(), 0);
    }

    #[test]
    fn free_recycles() {
        let mut t = HostFrameTable::new(1);
        let f = t.alloc(guest_owner(0)).unwrap();
        t.set_dirty(f, true);
        t.set_accessed(f, true);
        t.free(f);
        let g = t.alloc(guest_owner(1)).unwrap();
        assert_eq!(f, g);
        assert!(!t.dirty(g), "recycled frame must have clear bits");
        assert!(!t.accessed(g));
        assert_eq!(t.label(g), ContentLabel::ZERO);
    }

    #[test]
    fn lowest_free_frame_reused_first() {
        let mut t = HostFrameTable::new(8);
        let frames: Vec<FrameId> = (0..8).map(|g| t.alloc(guest_owner(g)).unwrap()).collect();
        // Free out of order; the allocator must still hand back the
        // lowest-numbered free frame first.
        t.free(frames[5]);
        t.free(frames[1]);
        t.free(frames[3]);
        assert_eq!(t.alloc(guest_owner(10)).unwrap().get(), 1);
        assert_eq!(t.alloc(guest_owner(11)).unwrap().get(), 3);
        assert_eq!(t.alloc(guest_owner(12)).unwrap().get(), 5);
        assert!(t.alloc(guest_owner(13)).is_none());
    }

    #[test]
    fn bitmap_spans_multiple_words() {
        let mut t = HostFrameTable::new(130);
        let frames: Vec<FrameId> = (0..130).map(|g| t.alloc(guest_owner(g)).unwrap()).collect();
        assert_eq!(frames.last().unwrap().get(), 129);
        assert!(t.alloc(guest_owner(130)).is_none());
        // Free one frame in each word; reuse must walk back to word 0.
        t.free(frames[129]);
        t.free(frames[70]);
        t.free(frames[3]);
        assert_eq!(t.alloc(guest_owner(200)).unwrap().get(), 3);
        assert_eq!(t.alloc(guest_owner(201)).unwrap().get(), 70);
        assert_eq!(t.alloc(guest_owner(202)).unwrap().get(), 129);
        assert_eq!(t.free_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut t = HostFrameTable::new(1);
        let f = t.alloc(guest_owner(0)).unwrap();
        t.free(f);
        t.free(f);
    }

    #[test]
    fn owner_classification() {
        let vm = VmId::new(0);
        assert!(!FrameOwner::Guest { vm, gfn: Gfn::new(0) }.is_named());
        assert!(FrameOwner::PageCache { vm, image_page: 0 }.is_named());
        assert!(FrameOwner::HypervisorCode { vm, page: 0 }.is_named());
        assert!(!FrameOwner::WriteBuffer { vm, gfn: Gfn::new(0) }.is_named());
        assert!(!FrameOwner::Free.is_named());
    }

    #[test]
    fn retagging_owner() {
        let mut t = HostFrameTable::new(1);
        let vm = VmId::new(0);
        let f = t.alloc(FrameOwner::PageCache { vm, image_page: 9 }).unwrap();
        t.set_owner(f, FrameOwner::Guest { vm, gfn: Gfn::new(3) });
        assert_eq!(t.owner(f), FrameOwner::Guest { vm, gfn: Gfn::new(3) });
    }

    #[test]
    fn iter_allocated_skips_free() {
        let mut t = HostFrameTable::new(3);
        let a = t.alloc(guest_owner(0)).unwrap();
        let b = t.alloc(guest_owner(1)).unwrap();
        t.free(a);
        let allocated: Vec<FrameId> = t.iter_allocated().map(|(id, _)| id).collect();
        assert_eq!(allocated, vec![b]);
    }
}
