//! Memory substrate for the VSwapper reproduction.
//!
//! Models the memory objects the paper's analysis revolves around (Figure 1
//! of the paper): host physical frames, the guest-physical address space of
//! each VM, and the host-controlled GPA⇒HPA translation table (the "EPT")
//! whose non-present entries are what trigger uncooperative swapping
//! activity.
//!
//! * [`addr`] — page-number newtypes ([`Gfn`], [`Vpn`], [`VmId`]) and size
//!   conversion helpers,
//! * [`content`] — opaque content labels used to *prove* data consistency
//!   end-to-end (the Mapper's subtle consistency issues, §4.1),
//! * [`ilist`] — an intrusive index list giving O(1) LRU queue surgery over
//!   densely numbered frames/pages,
//! * [`frame`] — the host physical frame table with ownership, accessed and
//!   dirty bookkeeping,
//! * [`ept`] — per-VM GPA⇒HPA tables whose non-present entries carry the
//!   *backing location* of evicted pages (host swap slot, disk-image block,
//!   or nothing).
//!
//! # Examples
//!
//! ```
//! use vswap_mem::{FrameOwner, Gfn, HostFrameTable, VmId};
//!
//! let mut frames = HostFrameTable::new(1024);
//! let vm = VmId::new(0);
//! let frame = frames.alloc(FrameOwner::Guest { vm, gfn: Gfn::new(7) }).unwrap();
//! assert_eq!(frames.free_frames(), 1023);
//! frames.free(frame);
//! assert_eq!(frames.free_frames(), 1024);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod content;
pub mod ept;
pub mod frame;
pub mod ilist;

pub use addr::{pages_to_bytes, pages_to_mb, Gfn, MemBytes, VmId, Vpn};
pub use content::{ContentLabel, LabelGen};
pub use ept::{Backing, Ept, EptEntry};
pub use frame::{FrameId, FrameOwner, HostFrameTable};
pub use ilist::{IndexList, ListArena, ListHead};
