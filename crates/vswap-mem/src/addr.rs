//! Page-number newtypes and size conversions.
//!
//! All memory in the simulation is page-granular (4 KiB), so addresses are
//! page numbers, not byte addresses. Distinct newtypes keep guest-virtual,
//! guest-physical, and VM identities from being mixed up — exactly the
//! confusion (GVA vs GPA vs HPA) that Figure 1 of the paper untangles.

use std::fmt;

/// Bytes per page, fixed at 4 KiB as in the paper's x86 testbed.
pub const PAGE_BYTES: u64 = 4096;

/// Converts a page count to bytes.
pub const fn pages_to_bytes(pages: u64) -> u64 {
    pages * PAGE_BYTES
}

/// Converts a page count to mebibytes (rounding down).
pub const fn pages_to_mb(pages: u64) -> u64 {
    pages_to_bytes(pages) / (1024 * 1024)
}

/// A memory size expressed in bytes, constructible from human units.
///
/// # Examples
///
/// ```
/// use vswap_mem::MemBytes;
///
/// assert_eq!(MemBytes::from_mb(1).pages(), 256);
/// assert_eq!(MemBytes::from_gb(1), MemBytes::from_mb(1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MemBytes(u64);

impl MemBytes {
    /// Creates a size from raw bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        MemBytes(bytes)
    }

    /// Creates a size from mebibytes.
    pub const fn from_mb(mb: u64) -> Self {
        MemBytes(mb * 1024 * 1024)
    }

    /// Creates a size from gibibytes.
    pub const fn from_gb(gb: u64) -> Self {
        MemBytes(gb * 1024 * 1024 * 1024)
    }

    /// Returns the size in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Returns the size in whole 4 KiB pages (rounding down).
    pub const fn pages(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Returns the size in whole mebibytes (rounding down).
    pub const fn mb(self) -> u64 {
        self.0 / (1024 * 1024)
    }
}

impl fmt::Display for MemBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 * 1024 && self.0 % (1024 * 1024 * 1024) == 0 {
            write!(f, "{}GiB", self.0 / (1024 * 1024 * 1024))
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{}MiB", self.0 / (1024 * 1024))
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

macro_rules! page_number_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Creates the page number.
            pub const fn new(n: u64) -> Self {
                $name(n)
            }

            /// Returns the raw page number.
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Returns the raw page number as a `usize` index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the page number `delta` pages later.
            pub const fn offset(self, delta: u64) -> Self {
                $name(self.0 + delta)
            }
        }

        impl From<u64> for $name {
            fn from(n: u64) -> Self {
                $name(n)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

page_number_newtype! {
    /// A guest frame number: an index into a VM's guest-physical address
    /// space ("GPA" page in the paper's terminology).
    Gfn
}

page_number_newtype! {
    /// A guest virtual page number: an index into a guest process's virtual
    /// address space ("GVA" page).
    Vpn
}

/// Identifies one virtual machine on the host.
///
/// # Examples
///
/// ```
/// use vswap_mem::VmId;
///
/// let vm = VmId::new(3);
/// assert_eq!(vm.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VmId(u32);

impl VmId {
    /// Creates a VM identifier.
    pub const fn new(id: u32) -> Self {
        VmId(id)
    }

    /// Returns the raw identifier.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_conversions() {
        assert_eq!(MemBytes::from_mb(512).pages(), 131_072);
        assert_eq!(MemBytes::from_gb(2).mb(), 2048);
        assert_eq!(pages_to_bytes(2), 8192);
        assert_eq!(pages_to_mb(256), 1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(MemBytes::from_gb(2).to_string(), "2GiB");
        assert_eq!(MemBytes::from_mb(512).to_string(), "512MiB");
        assert_eq!(MemBytes::from_bytes(100).to_string(), "100B");
    }

    #[test]
    fn newtypes_are_distinct_and_ordered() {
        let a = Gfn::new(1);
        let b = Gfn::new(2);
        assert!(a < b);
        assert_eq!(a.offset(1), b);
        assert_eq!(Vpn::new(5).index(), 5);
        assert_eq!(Gfn::from(9).get(), 9);
    }

    #[test]
    fn vmid_roundtrip() {
        assert_eq!(VmId::new(7).get(), 7);
        assert_eq!(VmId::new(7).index(), 7);
        assert_eq!(VmId::new(7).to_string(), "vm7");
    }
}
