//! Opaque content labels that flow with page data through the stack.
//!
//! The simulation does not store real bytes; instead every distinct piece of
//! page-sized content gets a unique [`ContentLabel`]. Labels travel with the
//! data: disk-image pages, host swap slots, host frames, and Preventer write
//! buffers all carry one. When the guest finally reads a page, the label is
//! checked against what the guest *should* observe — turning the Mapper's
//! data-consistency obligations (§4.1 "Data Consistency") into a machine-
//! checked invariant instead of a hope.

use std::fmt;

/// Identifies one immutable page-sized piece of content.
///
/// Two pages hold equal content if and only if their labels are equal. A
/// write produces a fresh label (content is immutable once labelled).
///
/// # Examples
///
/// ```
/// use vswap_mem::{ContentLabel, LabelGen};
///
/// let mut labels = LabelGen::new();
/// let a = labels.fresh();
/// let b = labels.fresh();
/// assert_ne!(a, b);
/// assert_eq!(ContentLabel::ZERO, ContentLabel::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentLabel(u64);

impl ContentLabel {
    /// The label of the all-zeroes page (fresh anonymous memory).
    pub const ZERO: ContentLabel = ContentLabel(0);

    /// Returns the raw label value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Reconstructs a label from its raw value. Intended for dense tables
    /// that store labels as bare `u64`s; the caller is responsible for only
    /// feeding back values produced by [`ContentLabel::get`].
    pub const fn from_raw(raw: u64) -> Self {
        ContentLabel(raw)
    }

    /// True for the all-zeroes page label.
    pub const fn is_zero_page(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ContentLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero_page() {
            write!(f, "content<zero>")
        } else {
            write!(f, "content<{}>", self.0)
        }
    }
}

impl Default for ContentLabel {
    fn default() -> Self {
        ContentLabel::ZERO
    }
}

/// Produces fresh, never-before-seen [`ContentLabel`]s.
#[derive(Debug, Clone)]
pub struct LabelGen {
    next: u64,
}

impl LabelGen {
    /// Creates a generator whose first fresh label is `1` (label `0` is
    /// reserved for the zero page).
    pub fn new() -> Self {
        LabelGen { next: 1 }
    }

    /// Creates a generator whose labels live in a disjoint per-namespace
    /// block of the `u64` label space. Namespace `0` is identical to
    /// [`LabelGen::new`]; namespace `n > 0` starts at `n << 40`, so two
    /// hosts of a cluster can mint labels concurrently without ever
    /// colliding — a precondition for migrating content labels between
    /// hosts verbatim.
    pub fn with_namespace(namespace: u32) -> Self {
        if namespace == 0 {
            LabelGen::new()
        } else {
            LabelGen { next: u64::from(namespace) << 40 }
        }
    }

    /// Returns a label no other call has returned.
    pub fn fresh(&mut self) -> ContentLabel {
        let label = ContentLabel(self.next);
        self.next += 1;
        label
    }

    /// Reserves `count` consecutive fresh labels and returns the first.
    /// Label `i` of the block is `first.get() + i`. Lets a caller stamp a
    /// large region (e.g. a disk image) with unique labels without
    /// materializing them one by one.
    pub fn fresh_block(&mut self, count: u64) -> ContentLabel {
        let first = ContentLabel(self.next);
        self.next += count;
        first
    }

    /// Number of labels handed out so far.
    pub fn issued(&self) -> u64 {
        self.next - 1
    }
}

impl Default for LabelGen {
    fn default() -> Self {
        LabelGen::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_labels_are_unique() {
        let mut g = LabelGen::new();
        let labels: Vec<ContentLabel> = (0..100).map(|_| g.fresh()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(g.issued(), 100);
    }

    #[test]
    fn zero_page_is_reserved() {
        let mut g = LabelGen::new();
        assert!(ContentLabel::ZERO.is_zero_page());
        assert!(!g.fresh().is_zero_page());
        assert_eq!(ContentLabel::default(), ContentLabel::ZERO);
    }

    #[test]
    fn namespaces_are_disjoint() {
        let mut a = LabelGen::with_namespace(1);
        let mut b = LabelGen::with_namespace(2);
        let from_a: Vec<ContentLabel> = (0..1000).map(|_| a.fresh()).collect();
        let from_b: Vec<ContentLabel> = (0..1000).map(|_| b.fresh()).collect();
        assert!(from_a.iter().all(|l| !from_b.contains(l)));
        assert!(!from_a.iter().any(|l| l.is_zero_page()));
        // Namespace 0 behaves exactly like `new()`.
        let mut z = LabelGen::with_namespace(0);
        assert_eq!(z.fresh(), LabelGen::new().fresh());
    }

    #[test]
    fn display_forms() {
        let mut g = LabelGen::new();
        assert_eq!(ContentLabel::ZERO.to_string(), "content<zero>");
        assert_eq!(g.fresh().to_string(), "content<1>");
    }
}
