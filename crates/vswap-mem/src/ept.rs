//! The per-VM GPA⇒HPA translation table (hardware-assisted "EPT").
//!
//! The lower level of Figure 1 in the paper: the host controls it, and a
//! non-present entry delivers an EPT-violation fault to the host when the
//! guest touches the page. In this model a non-present entry also remembers
//! *where the evicted content lives* — the host swap area for baseline
//! uncooperative swapping, or a disk-image block for pages the Swap Mapper
//! turned into named pages (whose mapping is discarded rather than swapped).

use crate::addr::Gfn;
use crate::frame::FrameId;

/// Where the content of a non-present guest page can be recovered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backing {
    /// Never materialized: a fault yields a zero-filled page.
    None,
    /// Swapped out to the given host swap-area slot.
    SwapSlot(u64),
    /// Named page discarded by the Mapper; content is page `image_page` of
    /// the VM's disk image.
    ImagePage(u64),
}

/// One GPA⇒HPA entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EptEntry {
    /// The guest page is resident in the given host frame.
    Present {
        /// Backing host frame.
        frame: FrameId,
    },
    /// The guest page is not resident; accessing it faults to the host.
    NotPresent {
        /// Where the content can be recovered from.
        backing: Backing,
    },
}

/// A VM's guest-physical address space mapping.
///
/// # Examples
///
/// ```
/// use vswap_mem::{Backing, Ept, FrameId, Gfn};
///
/// let mut ept = Ept::new(16);
/// let gfn = Gfn::new(3);
/// assert_eq!(ept.translate(gfn), None);
/// ept.map(gfn, FrameId::new(7));
/// assert_eq!(ept.translate(gfn), Some(FrameId::new(7)));
/// let frame = ept.unmap(gfn, Backing::SwapSlot(12));
/// assert_eq!(frame, FrameId::new(7));
/// assert_eq!(ept.backing(gfn), Some(Backing::SwapSlot(12)));
/// ```
#[derive(Debug, Clone)]
pub struct Ept {
    entries: Vec<EptEntry>,
    resident: u64,
}

impl Ept {
    /// Creates a table for a guest-physical space of `gfn_count` pages,
    /// all initially non-present with no backing.
    pub fn new(gfn_count: u64) -> Self {
        Ept {
            entries: vec![EptEntry::NotPresent { backing: Backing::None }; gfn_count as usize],
            resident: 0,
        }
    }

    /// Size of the guest-physical space in pages.
    pub fn gfn_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Number of currently resident (present) guest pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident
    }

    /// Returns the entry for `gfn`.
    ///
    /// # Panics
    ///
    /// Panics if `gfn` is out of range.
    pub fn entry(&self, gfn: Gfn) -> EptEntry {
        self.entries[gfn.index()]
    }

    /// Returns the backing frame if the page is present.
    pub fn translate(&self, gfn: Gfn) -> Option<FrameId> {
        match self.entries[gfn.index()] {
            EptEntry::Present { frame } => Some(frame),
            EptEntry::NotPresent { .. } => None,
        }
    }

    /// Returns the backing location if the page is *not* present.
    pub fn backing(&self, gfn: Gfn) -> Option<Backing> {
        match self.entries[gfn.index()] {
            EptEntry::Present { .. } => None,
            EptEntry::NotPresent { backing } => Some(backing),
        }
    }

    /// Maps `gfn` to a host frame, making it present.
    ///
    /// # Panics
    ///
    /// Panics if the page is already present (unmap first).
    pub fn map(&mut self, gfn: Gfn, frame: FrameId) {
        let entry = &mut self.entries[gfn.index()];
        assert!(
            matches!(entry, EptEntry::NotPresent { .. }),
            "mapping an already-present gfn {gfn}"
        );
        *entry = EptEntry::Present { frame };
        self.resident += 1;
    }

    /// Unmaps a present page, recording where its content now lives, and
    /// returns the frame that backed it.
    ///
    /// # Panics
    ///
    /// Panics if the page is not present.
    pub fn unmap(&mut self, gfn: Gfn, backing: Backing) -> FrameId {
        let entry = &mut self.entries[gfn.index()];
        match *entry {
            EptEntry::Present { frame } => {
                *entry = EptEntry::NotPresent { backing };
                self.resident -= 1;
                frame
            }
            EptEntry::NotPresent { .. } => panic!("unmapping a non-present gfn {gfn}"),
        }
    }

    /// Rewrites the backing of a non-present page (e.g. the Mapper
    /// invalidates a stale image association when the guest overwrites the
    /// underlying disk blocks).
    ///
    /// # Panics
    ///
    /// Panics if the page is present.
    pub fn set_backing(&mut self, gfn: Gfn, backing: Backing) {
        let entry = &mut self.entries[gfn.index()];
        assert!(
            matches!(entry, EptEntry::NotPresent { .. }),
            "cannot set backing of present gfn {gfn}"
        );
        *entry = EptEntry::NotPresent { backing };
    }

    /// Iterates over present pages as `(gfn, frame)`.
    pub fn iter_present(&self) -> impl Iterator<Item = (Gfn, FrameId)> + '_ {
        self.entries.iter().enumerate().filter_map(|(i, e)| match e {
            EptEntry::Present { frame } => Some((Gfn::new(i as u64), *frame)),
            EptEntry::NotPresent { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_non_present() {
        let ept = Ept::new(8);
        assert_eq!(ept.resident_pages(), 0);
        for i in 0..8 {
            assert_eq!(ept.backing(Gfn::new(i)), Some(Backing::None));
        }
    }

    #[test]
    fn map_unmap_cycle_tracks_residency() {
        let mut ept = Ept::new(4);
        ept.map(Gfn::new(0), FrameId::new(10));
        ept.map(Gfn::new(1), FrameId::new(11));
        assert_eq!(ept.resident_pages(), 2);
        let f = ept.unmap(Gfn::new(0), Backing::SwapSlot(5));
        assert_eq!(f, FrameId::new(10));
        assert_eq!(ept.resident_pages(), 1);
        assert_eq!(ept.backing(Gfn::new(0)), Some(Backing::SwapSlot(5)));
        assert_eq!(ept.translate(Gfn::new(1)), Some(FrameId::new(11)));
    }

    #[test]
    fn set_backing_rewrites_eviction_record() {
        let mut ept = Ept::new(2);
        ept.map(Gfn::new(0), FrameId::new(1));
        ept.unmap(Gfn::new(0), Backing::ImagePage(42));
        ept.set_backing(Gfn::new(0), Backing::None);
        assert_eq!(ept.backing(Gfn::new(0)), Some(Backing::None));
    }

    #[test]
    fn iter_present_lists_only_mapped() {
        let mut ept = Ept::new(4);
        ept.map(Gfn::new(1), FrameId::new(100));
        ept.map(Gfn::new(3), FrameId::new(101));
        let present: Vec<(Gfn, FrameId)> = ept.iter_present().collect();
        assert_eq!(
            present,
            vec![(Gfn::new(1), FrameId::new(100)), (Gfn::new(3), FrameId::new(101))]
        );
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_map_panics() {
        let mut ept = Ept::new(1);
        ept.map(Gfn::new(0), FrameId::new(0));
        ept.map(Gfn::new(0), FrameId::new(1));
    }

    #[test]
    #[should_panic(expected = "non-present")]
    fn unmap_non_present_panics() {
        let mut ept = Ept::new(1);
        ept.unmap(Gfn::new(0), Backing::None);
    }
}

#[cfg(test)]
mod backing_tests {
    use super::*;

    #[test]
    fn all_backing_variants_round_trip() {
        let mut ept = Ept::new(4);
        for (i, backing) in
            [Backing::None, Backing::SwapSlot(9), Backing::ImagePage(42)].into_iter().enumerate()
        {
            let gfn = Gfn::new(i as u64);
            ept.map(gfn, FrameId::new(i as u32));
            ept.unmap(gfn, backing);
            assert_eq!(ept.backing(gfn), Some(backing));
            assert_eq!(ept.entry(gfn), EptEntry::NotPresent { backing });
        }
    }

    #[test]
    fn gfn_count_is_fixed() {
        let ept = Ept::new(17);
        assert_eq!(ept.gfn_count(), 17);
    }
}
