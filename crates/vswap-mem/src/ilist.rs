//! An intrusive doubly-linked list over dense indices.
//!
//! LRU reclamation in both the guest and host kernels needs queues over
//! frames/pages that support O(1) *removal from the middle* (a page gets
//! touched and must be requeued, or gets freed while sitting on the inactive
//! list). With up to millions of frames, `VecDeque::retain` would be far too
//! slow, so — like the kernels being modelled — we use intrusive links
//! stored in a side table indexed by the element number.

/// An intrusive FIFO list over elements identified by dense `usize` indices
/// in `[0, capacity)`.
///
/// Each element can be on the list at most once; membership is tracked
/// internally. All operations are O(1).
///
/// # Examples
///
/// ```
/// use vswap_mem::IndexList;
///
/// let mut lru = IndexList::with_capacity(8);
/// lru.push_back(3);
/// lru.push_back(5);
/// lru.remove(3);
/// assert_eq!(lru.pop_front(), Some(5));
/// assert!(lru.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IndexList {
    links: LinkTable,
    head: Option<u32>,
    tail: Option<u32>,
    len: usize,
}

/// Dense link storage. The neighbours of element `i` are packed into one
/// `u64` word — `prev + 1` in the low half, `next + 1` in the high half,
/// with `0` meaning "none" — and list membership lives in a separate
/// bitmap. The idle state of every element is therefore all-zero bytes,
/// so construction over millions of frames is a single `alloc_zeroed`
/// (lazily mapped) instead of an eager fill.
#[derive(Debug, Clone)]
struct LinkTable {
    words: Vec<u64>,
    on_bits: Vec<u64>,
}

impl LinkTable {
    fn with_capacity(capacity: usize) -> Self {
        LinkTable { words: vec![0; capacity], on_bits: vec![0; capacity.div_ceil(64)] }
    }

    fn capacity(&self) -> usize {
        self.words.len()
    }

    fn grow(&mut self, new_capacity: usize) {
        if new_capacity > self.words.len() {
            self.words.resize(new_capacity, 0);
            self.on_bits.resize(new_capacity.div_ceil(64), 0);
        }
    }

    fn on_list(&self, index: usize) -> bool {
        self.on_bits[index / 64] & (1u64 << (index % 64)) != 0
    }

    fn set_on_list(&mut self, index: usize, on: bool) {
        let mask = 1u64 << (index % 64);
        if on {
            self.on_bits[index / 64] |= mask;
        } else {
            self.on_bits[index / 64] &= !mask;
        }
    }

    fn prev(&self, index: usize) -> Option<u32> {
        let p = self.words[index] as u32;
        p.checked_sub(1)
    }

    fn next(&self, index: usize) -> Option<u32> {
        let n = (self.words[index] >> 32) as u32;
        n.checked_sub(1)
    }

    fn set_prev(&mut self, index: usize, prev: Option<u32>) {
        let p = prev.map_or(0, |v| u64::from(v) + 1);
        self.words[index] = (self.words[index] & !0xFFFF_FFFF) | p;
    }

    fn set_next(&mut self, index: usize, next: Option<u32>) {
        let n = next.map_or(0, |v| u64::from(v) + 1);
        self.words[index] = (self.words[index] & 0xFFFF_FFFF) | (n << 32);
    }

    fn link(&mut self, index: usize, prev: Option<u32>, next: Option<u32>) {
        let p = prev.map_or(0, |v| u64::from(v) + 1);
        let n = next.map_or(0, |v| u64::from(v) + 1);
        self.words[index] = p | (n << 32);
        self.set_on_list(index, true);
    }

    fn clear(&mut self, index: usize) {
        self.words[index] = 0;
        self.set_on_list(index, false);
    }
}

impl IndexList {
    /// Creates an empty list able to hold indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        IndexList { links: LinkTable::with_capacity(capacity), head: None, tail: None, len: 0 }
    }

    /// Number of elements currently on the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity (one more than the largest admissible index).
    pub fn capacity(&self) -> usize {
        self.links.capacity()
    }

    /// Grows the capacity to hold indices `0..new_capacity` (no-op if
    /// already large enough).
    pub fn grow(&mut self, new_capacity: usize) {
        self.links.grow(new_capacity);
    }

    /// True if `index` is currently on the list.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of capacity.
    pub fn contains(&self, index: usize) -> bool {
        self.links.on_list(index)
    }

    /// Appends `index` at the back (the "most recently added" end).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of capacity or already on the list.
    pub fn push_back(&mut self, index: usize) {
        assert!(!self.links.on_list(index), "index {index} already on list");
        let idx = index as u32;
        self.links.link(index, self.tail, None);
        match self.tail {
            Some(t) => self.links.set_next(t as usize, Some(idx)),
            None => self.head = Some(idx),
        }
        self.tail = Some(idx);
        self.len += 1;
    }

    /// Prepends `index` at the front (the "next victim" end).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of capacity or already on the list.
    pub fn push_front(&mut self, index: usize) {
        assert!(!self.links.on_list(index), "index {index} already on list");
        let idx = index as u32;
        self.links.link(index, None, self.head);
        match self.head {
            Some(h) => self.links.set_prev(h as usize, Some(idx)),
            None => self.tail = Some(idx),
        }
        self.head = Some(idx);
        self.len += 1;
    }

    /// Returns the front element without removing it.
    pub fn front(&self) -> Option<usize> {
        self.head.map(|h| h as usize)
    }

    /// Removes and returns the front element.
    pub fn pop_front(&mut self) -> Option<usize> {
        let h = self.head?;
        self.remove(h as usize);
        Some(h as usize)
    }

    /// Removes `index` from wherever it sits on the list. Returns `true`
    /// if the element was on the list.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of capacity.
    pub fn remove(&mut self, index: usize) -> bool {
        if !self.links.on_list(index) {
            return false;
        }
        let prev = self.links.prev(index);
        let next = self.links.next(index);
        match prev {
            Some(p) => self.links.set_next(p as usize, next),
            None => self.head = next,
        }
        match next {
            Some(n) => self.links.set_prev(n as usize, prev),
            None => self.tail = prev,
        }
        self.links.clear(index);
        self.len -= 1;
        true
    }

    /// Moves `index` to the back (e.g. "page was referenced; give it a
    /// second chance"). If not on the list, pushes it.
    pub fn move_to_back(&mut self, index: usize) {
        self.remove(index);
        self.push_back(index);
    }

    /// Iterates front-to-back without removing elements.
    pub fn iter(&self) -> Iter<'_> {
        Iter { links: &self.links, cursor: self.head }
    }
}

/// Front-to-back iterator over an [`IndexList`]; see [`IndexList::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    links: &'a LinkTable,
    cursor: Option<u32>,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let c = self.cursor?;
        self.cursor = self.links.next(c as usize);
        Some(c as usize)
    }
}

/// Shared link storage for many lists over one dense index space.
///
/// A host frame sits on exactly one LRU list at a time (its owning VM's
/// anonymous or named list), so all lists can share a single links table —
/// [`ListArena`] — with each list identified by a lightweight [`ListHead`].
/// The caller is responsible for pairing each element with the head of the
/// list it currently belongs to.
///
/// # Examples
///
/// ```
/// use vswap_mem::ilist::{ListArena, ListHead};
///
/// let mut arena = ListArena::with_capacity(16);
/// let mut a = ListHead::new();
/// let mut b = ListHead::new();
/// arena.push_back(&mut a, 1);
/// arena.push_back(&mut b, 2);
/// assert_eq!(arena.pop_front(&mut a), Some(1));
/// assert_eq!(arena.pop_front(&mut b), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct ListArena {
    links: LinkTable,
}

/// Head/tail/len of one list living in a [`ListArena`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ListHead {
    head: Option<u32>,
    tail: Option<u32>,
    len: usize,
}

impl ListHead {
    /// Creates an empty list head.
    pub fn new() -> Self {
        ListHead::default()
    }

    /// Number of elements on this list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Front element (next victim), if any.
    pub fn front(&self) -> Option<usize> {
        self.head.map(|h| h as usize)
    }
}

impl ListArena {
    /// Creates link storage for indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        ListArena { links: LinkTable::with_capacity(capacity) }
    }

    /// Capacity (one more than the largest admissible index).
    pub fn capacity(&self) -> usize {
        self.links.capacity()
    }

    /// True if `index` is on *some* list in this arena.
    pub fn on_any_list(&self, index: usize) -> bool {
        self.links.on_list(index)
    }

    /// Appends `index` at the back of the list identified by `head`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is already on a list in this arena.
    pub fn push_back(&mut self, head: &mut ListHead, index: usize) {
        assert!(!self.links.on_list(index), "index {index} already on a list");
        let idx = index as u32;
        self.links.link(index, head.tail, None);
        match head.tail {
            Some(t) => self.links.set_next(t as usize, Some(idx)),
            None => head.head = Some(idx),
        }
        head.tail = Some(idx);
        head.len += 1;
    }

    /// Removes `index` from the list identified by `head`.
    ///
    /// The caller must pass the head of the list the element is actually
    /// on; list membership across heads is not checked (only arena-level
    /// membership is). Returns `true` if the element was on a list.
    pub fn remove(&mut self, head: &mut ListHead, index: usize) -> bool {
        if !self.links.on_list(index) {
            return false;
        }
        let prev = self.links.prev(index);
        let next = self.links.next(index);
        match prev {
            Some(p) => self.links.set_next(p as usize, next),
            None => head.head = next,
        }
        match next {
            Some(n) => self.links.set_prev(n as usize, prev),
            None => head.tail = prev,
        }
        self.links.clear(index);
        head.len -= 1;
        true
    }

    /// Removes and returns the front element of the list.
    pub fn pop_front(&mut self, head: &mut ListHead) -> Option<usize> {
        let h = head.head?;
        self.remove(head, h as usize);
        Some(h as usize)
    }

    /// Moves `index` to the back of the list it is on (second chance).
    pub fn move_to_back(&mut self, head: &mut ListHead, index: usize) {
        self.remove(head, index);
        self.push_back(head, index);
    }

    /// Iterates one list front-to-back.
    pub fn iter<'a>(&'a self, head: &ListHead) -> ArenaIter<'a> {
        ArenaIter { links: &self.links, cursor: head.head }
    }
}

/// Front-to-back iterator over one arena list; see [`ListArena::iter`].
#[derive(Debug)]
pub struct ArenaIter<'a> {
    links: &'a LinkTable,
    cursor: Option<u32>,
}

impl Iterator for ArenaIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let c = self.cursor?;
        self.cursor = self.links.next(c as usize);
        Some(c as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut l = IndexList::with_capacity(10);
        for i in [2, 4, 6] {
            l.push_back(i);
        }
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 4, 6]);
        assert_eq!(l.pop_front(), Some(2));
        assert_eq!(l.pop_front(), Some(4));
        assert_eq!(l.pop_front(), Some(6));
        assert_eq!(l.pop_front(), None);
    }

    #[test]
    fn middle_removal_relinks() {
        let mut l = IndexList::with_capacity(10);
        for i in 0..5 {
            l.push_back(i);
        }
        assert!(l.remove(2));
        assert!(!l.remove(2));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 3, 4]);
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn move_to_back_requeues() {
        let mut l = IndexList::with_capacity(4);
        l.push_back(0);
        l.push_back(1);
        l.push_back(2);
        l.move_to_back(0);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 2, 0]);
        // Works for non-members too.
        l.move_to_back(3);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 2, 0, 3]);
    }

    #[test]
    fn push_front_becomes_next_victim() {
        let mut l = IndexList::with_capacity(4);
        l.push_back(1);
        l.push_front(2);
        assert_eq!(l.front(), Some(2));
        assert_eq!(l.pop_front(), Some(2));
        assert_eq!(l.pop_front(), Some(1));
    }

    #[test]
    fn grow_preserves_contents() {
        let mut l = IndexList::with_capacity(2);
        l.push_back(0);
        l.push_back(1);
        l.grow(10);
        l.push_back(9);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 9]);
    }

    #[test]
    #[should_panic(expected = "already on list")]
    fn double_insert_panics() {
        let mut l = IndexList::with_capacity(2);
        l.push_back(0);
        l.push_back(0);
    }

    #[test]
    fn arena_lists_are_independent() {
        let mut arena = ListArena::with_capacity(8);
        let mut a = ListHead::new();
        let mut b = ListHead::new();
        arena.push_back(&mut a, 0);
        arena.push_back(&mut a, 1);
        arena.push_back(&mut b, 2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(arena.iter(&a).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(arena.iter(&b).collect::<Vec<_>>(), vec![2]);
        assert!(arena.remove(&mut a, 0));
        assert_eq!(a.front(), Some(1));
        assert!(arena.on_any_list(2));
        assert!(!arena.on_any_list(0));
    }

    #[test]
    fn arena_element_moves_between_lists() {
        let mut arena = ListArena::with_capacity(4);
        let mut named = ListHead::new();
        let mut anon = ListHead::new();
        arena.push_back(&mut named, 3);
        arena.remove(&mut named, 3);
        arena.push_back(&mut anon, 3);
        assert!(named.is_empty());
        assert_eq!(anon.len(), 1);
        assert_eq!(arena.pop_front(&mut anon), Some(3));
    }

    #[test]
    fn arena_move_to_back_requeues() {
        let mut arena = ListArena::with_capacity(4);
        let mut l = ListHead::new();
        arena.push_back(&mut l, 0);
        arena.push_back(&mut l, 1);
        arena.move_to_back(&mut l, 0);
        assert_eq!(arena.iter(&l).collect::<Vec<_>>(), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "already on a list")]
    fn arena_double_insert_panics() {
        let mut arena = ListArena::with_capacity(2);
        let mut a = ListHead::new();
        let mut b = ListHead::new();
        arena.push_back(&mut a, 0);
        arena.push_back(&mut b, 0);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut l = IndexList::with_capacity(1);
        l.push_back(0);
        assert!(l.contains(0));
        assert_eq!(l.len(), 1);
        assert!(l.remove(0));
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        // Reinsert after removal works.
        l.push_front(0);
        assert_eq!(l.front(), Some(0));
    }
}
