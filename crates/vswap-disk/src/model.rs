//! The block device model: multi-queue asynchronous submission,
//! per-queue head tracking, and I/O accounting.
//!
//! Every device exposes one or more hardware queue pairs (submission +
//! completion ring). A submitted command claims a slot on the
//! least-loaded queue; up to `queue_depth` commands per queue are
//! serviced concurrently, so completions can land out of order in
//! simulated time. A single-queue device at depth 1 degenerates to the
//! classic one-head FIFO the rotational model was built on — byte-
//! identical timing, which the golden corpus relies on.

use crate::error::{IoError, IoErrorKind};
use crate::geometry::SectorRange;
use crate::spec::DiskSpec;
use sim_core::{SimDuration, SimTime};
use sim_fault::{FaultKind, FaultPlan, InjectedFault};
use sim_obs::{Event, EventLog, FaultTag, IoClass, IoDir};

/// Maps the request direction onto the event taxonomy.
fn io_dir(kind: IoKind) -> IoDir {
    match kind {
        IoKind::Read => IoDir::Read,
        IoKind::Write => IoDir::Write,
    }
}

/// Maps the request issuer onto the event taxonomy.
fn io_class(tag: IoTag) -> IoClass {
    match tag {
        IoTag::GuestImage => IoClass::GuestImage,
        IoTag::HostSwap => IoClass::HostSwap,
    }
}

/// Maps the fault plan's taxonomy onto the event taxonomy.
fn fault_tag(kind: FaultKind) -> FaultTag {
    match kind {
        FaultKind::Latent => FaultTag::Latent,
        FaultKind::Transient => FaultTag::Transient,
        FaultKind::Timeout => FaultTag::Timeout,
        FaultKind::Torn => FaultTag::Torn,
    }
}

/// Whether a request reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Data moves from disk to memory.
    Read,
    /// Data moves from memory to disk.
    Write,
}

/// What part of the storage stack issued a request; used to attribute
/// sectors to the counters the paper reports (e.g. Figure 9d counts sectors
/// written *to the host swap area* only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoTag {
    /// A guest virtual-disk image access (explicit guest I/O, guest swap,
    /// or Mapper re-reads of named pages).
    GuestImage,
    /// A host swap-area access (uncooperative swapping traffic).
    HostSwap,
}

/// The outcome of a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedIo {
    /// When the device started servicing the request (after queueing).
    pub started: SimTime,
    /// When the last sector transferred.
    pub finished: SimTime,
    /// Latency perceived by the issuer (`finished - submitted`).
    pub latency: SimDuration,
    /// True if the request streamed from the previous head position.
    pub sequential: bool,
}

/// One hardware queue pair: a submission/completion ring plus the last
/// position serviced from it (sequentiality is per-queue — commands on
/// different queues do not share a stream).
#[derive(Debug, Clone, Default)]
struct IoQueue {
    /// One past the last sector serviced from this queue, `None` before
    /// the first command.
    head: Option<u64>,
    /// Completion instants of commands still occupying ring slots.
    /// Bounded by the configured queue depth; entries at or before the
    /// current submission instant are pruned lazily.
    inflight: Vec<SimTime>,
}

impl IoQueue {
    /// The instant the next command slot frees up, with `depth` slots:
    /// `now` if a slot is open, else the earliest in-flight completion.
    fn slot_at(&self, now: SimTime, depth: usize) -> SimTime {
        let mut outstanding = 0usize;
        let mut earliest = SimTime::ZERO;
        let mut have = false;
        for &c in &self.inflight {
            if c > now {
                outstanding += 1;
                if !have || c < earliest {
                    earliest = c;
                    have = true;
                }
            }
        }
        if outstanding < depth {
            now
        } else {
            earliest
        }
    }

    /// Claims a slot: prunes drained commands and returns the service
    /// start instant (removing the completion we wait on, if any).
    fn claim(&mut self, now: SimTime, depth: usize) -> SimTime {
        self.inflight.retain(|&c| c > now);
        if self.inflight.len() < depth {
            now
        } else {
            let mut idx = 0;
            for (i, &c) in self.inflight.iter().enumerate() {
                if c < self.inflight[idx] {
                    idx = i;
                }
            }
            self.inflight.swap_remove(idx)
        }
    }
}

/// Cumulative request accounting, overall and per [`IoTag`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Total requests serviced.
    pub ops: u64,
    /// Read requests serviced.
    pub read_ops: u64,
    /// Write requests serviced.
    pub write_ops: u64,
    /// Sectors read.
    pub sectors_read: u64,
    /// Sectors written.
    pub sectors_written: u64,
    /// Requests that streamed without repositioning.
    pub sequential_ops: u64,
    /// Requests that paid a seek.
    pub seeks: u64,
    /// Sectors read from the host swap area.
    pub swap_sectors_read: u64,
    /// Sectors written to the host swap area.
    pub swap_sectors_written: u64,
    /// Read requests against the host swap area.
    pub swap_read_ops: u64,
    /// Swap-area read requests that paid a seek — scattered slot content,
    /// the decayed-sequentiality signal.
    pub swap_read_seeks: u64,
    /// Write requests against the host swap area.
    pub swap_write_ops: u64,
    /// Total time the device spent busy.
    pub busy: SimDuration,
    /// Requests failed by the fault plan (all kinds).
    pub injected_faults: u64,
    /// Requests resubmitted after a failure (`attempt > 0`).
    pub io_retries: u64,
    /// Requests aborted for exceeding their service deadline.
    pub timed_out_requests: u64,
    /// Multi-sector writes that tore partway.
    pub torn_writes: u64,
    /// Doorbell rings: one per submission, but a batch rings once for
    /// all its merged ranges.
    pub doorbells: u64,
    /// Completions that landed before an earlier-submitted command
    /// still in flight finished — out-of-order completion, only possible
    /// with multiple queues or depth > 1.
    pub ooo_completions: u64,
    /// High-water mark of commands concurrently in service across all
    /// queues (1 on a single-queue depth-1 device).
    pub max_inflight: u64,
}

/// A single shared block device with a multi-queue asynchronous
/// submission backend.
///
/// Commands are submitted to per-queue rings (the least-loaded queue
/// wins, ties broken by index, so placement is deterministic); each
/// queue services up to the configured depth concurrently, and
/// completions on different queues land out of order in simulated time.
/// The defaults — [`DiskSpec::hdd_7200`]'s single queue at depth 1 —
/// degenerate to one-head FIFO servicing, because the phenomena under
/// study need only the *ratio* between streaming and seeking, plus
/// queueing delay when several VMs compete for the device (the
/// cascading effect of Figure 14). [`DiskSpec::nvme`] exposes 8 queues
/// and rewards deeper rings.
///
/// # Examples
///
/// ```
/// use sim_core::SimTime;
/// use vswap_disk::{DiskModel, DiskSpec, IoKind, IoTag, SectorRange};
///
/// let mut disk = DiskModel::new(DiskSpec::hdd_7200());
/// let a = disk
///     .submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage)
///     .expect("no fault plan installed");
/// let b = disk
///     .submit(a.finished, IoKind::Read, SectorRange::new(8, 8), IoTag::GuestImage)
///     .expect("no fault plan installed");
/// assert!(b.sequential);
/// assert!(b.latency < a.latency);
/// ```
#[derive(Debug, Clone)]
pub struct DiskModel {
    spec: DiskSpec,
    /// Commands serviced concurrently per queue (>= 1).
    depth: u32,
    /// The hardware queue pairs ([`DiskSpec::queues`] of them).
    queues: Vec<IoQueue>,
    /// The instant the device fully drains (monotone: max completion
    /// instant ever issued).
    busy_until: SimTime,
    stats: DiskStats,
    /// Structured event sink; disabled (free) unless attached.
    events: EventLog,
    /// Deterministic fault schedule; `None` (the default) injects nothing
    /// and costs nothing.
    fault_plan: Option<FaultPlan>,
}

impl DiskModel {
    /// Creates an idle device with the given timing parameters at queue
    /// depth 1 (synchronous servicing per queue).
    pub fn new(spec: DiskSpec) -> Self {
        DiskModel::with_queue_depth(spec, 1)
    }

    /// Creates an idle device servicing up to `depth` commands per queue
    /// concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (a ring with no slots) or the spec
    /// declares zero queues.
    pub fn with_queue_depth(spec: DiskSpec, depth: u32) -> Self {
        assert!(depth >= 1, "queue depth must be at least 1");
        assert!(spec.queues >= 1, "a device needs at least one queue");
        DiskModel {
            spec,
            depth,
            queues: vec![IoQueue::default(); spec.queues as usize],
            busy_until: SimTime::ZERO,
            stats: DiskStats::default(),
            events: EventLog::disabled(),
            fault_plan: None,
        }
    }

    /// Commands serviced concurrently per queue.
    pub fn queue_depth(&self) -> u32 {
        self.depth
    }

    /// Number of hardware queue pairs.
    pub fn queue_count(&self) -> u32 {
        self.queues.len() as u32
    }

    /// The queue the next command submitted at `now` would land on:
    /// the least-loaded one (earliest free slot), ties to the lowest
    /// index. Deterministic, and pinned to queue 0 on single-queue
    /// devices.
    fn pick_queue(&self, now: SimTime) -> usize {
        let depth = self.depth as usize;
        let mut best = 0usize;
        let mut best_at = self.queues[0].slot_at(now, depth);
        for (i, q) in self.queues.iter().enumerate().skip(1) {
            let at = q.slot_at(now, depth);
            if at < best_at {
                best = i;
                best_at = at;
            }
        }
        best
    }

    /// Registers a completion on queue `qi`: updates the out-of-order
    /// counter, the in-flight high-water mark, and the drain instant.
    fn complete(&mut self, qi: usize, started: SimTime, finished: SimTime) {
        if self.queues.iter().any(|q| q.inflight.iter().any(|&c| c > finished)) {
            self.stats.ooo_completions += 1;
        }
        self.queues[qi].inflight.push(finished);
        let in_service: u64 = self
            .queues
            .iter()
            .map(|q| q.inflight.iter().filter(|&&c| c > started).count() as u64)
            .sum();
        self.stats.max_inflight = self.stats.max_inflight.max(in_service);
        self.busy_until = self.busy_until.max(finished);
    }

    /// Installs (or clears) the deterministic fault schedule.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Attaches a structured event log; every request then emits
    /// issue/complete events.
    pub fn set_event_log(&mut self, events: EventLog) {
        self.events = events;
    }

    /// Returns the timing parameters.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Resets statistics (head position and queue state are kept).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// Returns the instant the device fully drains (the max completion
    /// instant issued so far).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Submits a request at simulated instant `now` and returns its
    /// completion. The command claims a slot on the least-loaded queue;
    /// when every slot is busy the request waits for the earliest one.
    ///
    /// # Errors
    ///
    /// Fails if the installed fault plan fails the request (never, when no
    /// plan is installed). The failed attempt still occupies its slot.
    pub fn submit(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: SectorRange,
        tag: IoTag,
    ) -> Result<CompletedIo, IoError> {
        self.submit_attempt(now, kind, range, tag, 0)
    }

    /// Like [`DiskModel::submit`], with an explicit attempt number: retry
    /// loops pass 1, 2, ... so the fault plan can bound failure bursts
    /// and the stats can count retries.
    ///
    /// # Errors
    ///
    /// Fails if the installed fault plan fails this attempt.
    pub fn submit_attempt(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: SectorRange,
        tag: IoTag,
        attempt: u32,
    ) -> Result<CompletedIo, IoError> {
        self.stats.doorbells += 1;
        self.submit_ringed(now, kind, range, tag, attempt)
    }

    /// [`DiskModel::submit_attempt`] minus the doorbell: batch
    /// submission rings once for all its ranges.
    fn submit_ringed(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: SectorRange,
        tag: IoTag,
        attempt: u32,
    ) -> Result<CompletedIo, IoError> {
        if attempt > 0 {
            self.stats.io_retries += 1;
        }
        let qi = self.pick_queue(now);
        self.events.emit_with(now, None, || Event::DiskIssue {
            dir: io_dir(kind),
            class: io_class(tag),
            sector: range.start(),
            sectors: range.len(),
            queue: qi as u32,
        });
        let started = self.queues[qi].claim(now, self.depth as usize);
        let gap = match self.queues[qi].head {
            None => Some(u64::MAX),
            Some(end) if end == range.start() => None,
            Some(end) => Some(end.abs_diff(range.start())),
        };
        let service = self.spec.request_latency(gap, range.len());
        if let Some(fault) = self.decide_fault(kind, range, attempt) {
            return Err(self.fail(qi, now, started, service, kind, range, tag, fault, true));
        }
        let finished = started + service;

        self.queues[qi].head = Some(range.end());
        self.complete(qi, started, finished);

        let sequential = gap.is_none();
        self.stats.ops += 1;
        self.stats.busy += service;
        if sequential {
            self.stats.sequential_ops += 1;
        } else {
            self.stats.seeks += 1;
        }
        match kind {
            IoKind::Read => {
                self.stats.read_ops += 1;
                self.stats.sectors_read += range.len();
                if tag == IoTag::HostSwap {
                    self.stats.swap_read_ops += 1;
                    self.stats.swap_sectors_read += range.len();
                    if !sequential {
                        self.stats.swap_read_seeks += 1;
                    }
                }
            }
            IoKind::Write => {
                self.stats.write_ops += 1;
                self.stats.sectors_written += range.len();
                if tag == IoTag::HostSwap {
                    self.stats.swap_write_ops += 1;
                    self.stats.swap_sectors_written += range.len();
                }
            }
        }

        self.events.emit_with(finished, None, || Event::DiskComplete {
            dir: io_dir(kind),
            class: io_class(tag),
            sector: range.start(),
            sectors: range.len(),
            latency: finished - now,
            sequential,
            queue: qi as u32,
        });
        Ok(CompletedIo { started, finished, latency: finished - now, sequential })
    }

    /// Asks the fault plan (if any) whether this attempt fails.
    fn decide_fault(
        &self,
        kind: IoKind,
        range: SectorRange,
        attempt: u32,
    ) -> Option<InjectedFault> {
        self.fault_plan
            .as_ref()
            .and_then(|p| p.decide(kind == IoKind::Write, range.start(), range.len(), attempt))
    }

    /// Records a failed attempt: the command's queue slot is occupied for
    /// the (possibly inflated) service time, fault counters are bumped, a
    /// `DiskFault` event fires, and the typed error is built.
    /// Successful-request counters (`ops`, `sectors_*`, seek accounting)
    /// are untouched so the model's invariants — and every fault-free
    /// golden — are preserved.
    #[allow(clippy::too_many_arguments)]
    fn fail(
        &mut self,
        qi: usize,
        now: SimTime,
        started: SimTime,
        service: SimDuration,
        kind: IoKind,
        range: SectorRange,
        tag: IoTag,
        fault: InjectedFault,
        move_head: bool,
    ) -> IoError {
        // A timed-out request holds its slot well past its nominal
        // service time before the deadline aborts it.
        let service = if fault.kind == FaultKind::Timeout { service * 4 } else { service };
        let finished = started + service;
        self.queues[qi].inflight.push(finished);
        self.busy_until = self.busy_until.max(finished);
        self.stats.busy += service;
        self.stats.injected_faults += 1;
        let error_kind = match fault.kind {
            FaultKind::Latent => IoErrorKind::Latent,
            FaultKind::Transient => IoErrorKind::Transient,
            FaultKind::Timeout => {
                self.stats.timed_out_requests += 1;
                IoErrorKind::Timeout
            }
            FaultKind::Torn => {
                self.stats.torn_writes += 1;
                IoErrorKind::Torn { written: fault.sector - range.start() }
            }
        };
        if move_head {
            // The head stopped where the transfer broke down.
            self.queues[qi].head = Some(fault.sector);
        }
        self.events.emit_with(finished, None, || Event::DiskFault {
            dir: io_dir(kind),
            class: io_class(tag),
            sector: fault.sector,
            fault: fault_tag(fault.kind),
            queue: qi as u32,
        });
        IoError { kind: error_kind, sector: fault.sector, wasted: finished - now }
    }

    /// Submits a *write-behind* request: the write is queued behind the
    /// elevator, costs only its transfer time on the device, and does not
    /// disturb the head position the foreground read stream depends on.
    /// The returned completion reflects device occupancy, not a latency
    /// any caller should wait for.
    ///
    /// # Errors
    ///
    /// Fails if the installed fault plan fails the request.
    pub fn submit_writeback(
        &mut self,
        now: SimTime,
        range: SectorRange,
        tag: IoTag,
    ) -> Result<CompletedIo, IoError> {
        self.submit_writeback_attempt(now, range, tag, 0)
    }

    /// Like [`DiskModel::submit_writeback`], with an explicit attempt
    /// number for retry loops.
    ///
    /// # Errors
    ///
    /// Fails if the installed fault plan fails this attempt.
    pub fn submit_writeback_attempt(
        &mut self,
        now: SimTime,
        range: SectorRange,
        tag: IoTag,
        attempt: u32,
    ) -> Result<CompletedIo, IoError> {
        if attempt > 0 {
            self.stats.io_retries += 1;
        }
        self.stats.doorbells += 1;
        let qi = self.pick_queue(now);
        self.events.emit_with(now, None, || Event::DiskIssue {
            dir: IoDir::Write,
            class: io_class(tag),
            sector: range.start(),
            sectors: range.len(),
            queue: qi as u32,
        });
        let started = self.queues[qi].claim(now, self.depth as usize);
        let service = self.spec.request_latency(None, range.len());
        if let Some(fault) = self.decide_fault(IoKind::Write, range, attempt) {
            // Write-behind never disturbs the foreground head position,
            // even when it fails.
            return Err(self.fail(
                qi,
                now,
                started,
                service,
                IoKind::Write,
                range,
                tag,
                fault,
                false,
            ));
        }
        let finished = started + service;
        self.complete(qi, started, finished);
        self.stats.ops += 1;
        self.stats.busy += service;
        self.stats.sequential_ops += 1;
        self.stats.write_ops += 1;
        self.stats.sectors_written += range.len();
        if tag == IoTag::HostSwap {
            self.stats.swap_write_ops += 1;
            self.stats.swap_sectors_written += range.len();
        }
        self.events.emit_with(finished, None, || Event::DiskComplete {
            dir: IoDir::Write,
            class: io_class(tag),
            sector: range.start(),
            sectors: range.len(),
            latency: finished - now,
            sequential: true,
            queue: qi as u32,
        });
        Ok(CompletedIo { started, finished, latency: finished - now, sequential: true })
    }

    /// Submits a batch of ranges as one logical operation (e.g. a readahead
    /// window). Contiguous ranges are merged so a well-clustered batch pays
    /// a single positioning cost, and the whole batch rings the doorbell
    /// once. Returns the completion of the whole batch.
    ///
    /// # Errors
    ///
    /// An empty batch is an [`IoErrorKind::EmptyBatch`] error. With a fault
    /// plan installed, the batch fails at the first faulting merged range
    /// (already-serviced earlier ranges keep their effects).
    pub fn submit_batch(
        &mut self,
        now: SimTime,
        kind: IoKind,
        ranges: &[SectorRange],
        tag: IoTag,
    ) -> Result<CompletedIo, IoError> {
        if ranges.is_empty() {
            return Err(IoError {
                kind: IoErrorKind::EmptyBatch,
                sector: 0,
                wasted: SimDuration::ZERO,
            });
        }
        self.stats.doorbells += 1;
        let merged = merge_ranges(ranges);
        let mut last: Option<CompletedIo> = None;
        for range in merged {
            let completed = self.submit_ringed(now, kind, range, tag, 0)?;
            last = Some(match last {
                None => completed,
                Some(prev) => CompletedIo {
                    started: prev.started,
                    finished: completed.finished,
                    latency: completed.finished - now,
                    sequential: prev.sequential && completed.sequential,
                },
            });
        }
        Ok(last.expect("batch was non-empty"))
    }
}

/// Sorts and merges overlapping/abutting ranges into maximal runs.
/// Public so fault-plan property tests can check that merging never
/// changes which sectors fail.
pub fn merge_ranges(ranges: &[SectorRange]) -> Vec<SectorRange> {
    let mut sorted: Vec<SectorRange> = ranges.to_vec();
    sorted.sort_by_key(|r| r.start());
    let mut out: Vec<SectorRange> = Vec::with_capacity(sorted.len());
    for r in sorted {
        match out.last_mut() {
            Some(last) if last.end() >= r.start() => {
                let end = last.end().max(r.end());
                *last = SectorRange::new(last.start(), end - last.start());
            }
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PAGE_SECTORS;
    use sim_fault::FaultConfig;

    fn disk() -> DiskModel {
        DiskModel::new(DiskSpec::hdd_7200())
    }

    fn ok(io: Result<CompletedIo, IoError>) -> CompletedIo {
        io.expect("no faults expected")
    }

    #[test]
    fn first_access_pays_full_seek() {
        let mut d = disk();
        let io =
            ok(d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage));
        assert!(!io.sequential);
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn contiguous_requests_stream() {
        let mut d = disk();
        let a =
            ok(d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage));
        let b = ok(d.submit(a.finished, IoKind::Read, SectorRange::new(8, 8), IoTag::GuestImage));
        assert!(b.sequential);
        assert!(b.latency < a.latency / 10);
    }

    #[test]
    fn queueing_delays_later_requests() {
        let mut d = disk();
        let a =
            ok(d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage));
        // Submitted at t=0 but device busy until `a.finished`.
        let b =
            ok(d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(8, 8), IoTag::GuestImage));
        assert_eq!(b.started, a.finished);
        assert!(b.latency >= a.latency);
    }

    #[test]
    fn swap_tag_attributes_sectors() {
        let mut d = disk();
        ok(d.submit(SimTime::ZERO, IoKind::Write, SectorRange::new(0, 8), IoTag::HostSwap));
        ok(d.submit(SimTime::ZERO, IoKind::Write, SectorRange::new(100, 8), IoTag::GuestImage));
        ok(d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::HostSwap));
        let s = d.stats();
        assert_eq!(s.swap_sectors_written, 8);
        assert_eq!(s.swap_sectors_read, 8);
        assert_eq!(s.sectors_written, 16);
        assert_eq!(s.swap_write_ops, 1);
        assert_eq!(s.swap_read_ops, 1);
    }

    #[test]
    fn batch_merges_contiguous_pages() {
        let mut d = disk();
        let ranges: Vec<SectorRange> = (0..4).map(|p| SectorRange::for_page(0, p)).collect();
        let io = ok(d.submit_batch(SimTime::ZERO, IoKind::Read, &ranges, IoTag::GuestImage));
        // One merged request: one op, one seek.
        assert_eq!(d.stats().ops, 1);
        assert_eq!(d.stats().sectors_read, 4 * PAGE_SECTORS);
        assert!(io.finished > io.started);
    }

    #[test]
    fn batch_scattered_pages_pay_multiple_seeks() {
        let mut d = disk();
        let ranges = vec![
            SectorRange::for_page(0, 0),
            SectorRange::for_page(1 << 20, 0),
            SectorRange::for_page(1 << 24, 0),
        ];
        ok(d.submit_batch(SimTime::ZERO, IoKind::Read, &ranges, IoTag::HostSwap));
        assert_eq!(d.stats().ops, 3);
        assert_eq!(d.stats().seeks, 3);
    }

    #[test]
    fn merge_ranges_handles_overlap_and_order() {
        let merged = merge_ranges(&[
            SectorRange::new(16, 8),
            SectorRange::new(0, 8),
            SectorRange::new(8, 10),
        ]);
        assert_eq!(merged, vec![SectorRange::new(0, 24)]);
    }

    #[test]
    fn reset_stats_keeps_head() {
        let mut d = disk();
        let a =
            ok(d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage));
        d.reset_stats();
        assert_eq!(d.stats().ops, 0);
        let b = ok(d.submit(a.finished, IoKind::Read, SectorRange::new(8, 8), IoTag::GuestImage));
        assert!(b.sequential, "head position survives stats reset");
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let err = disk()
            .submit_batch(SimTime::ZERO, IoKind::Read, &[], IoTag::GuestImage)
            .expect_err("empty batch must fail");
        assert_eq!(err.kind, IoErrorKind::EmptyBatch);
        assert!(!err.is_retryable());
    }

    /// Every sector in [0, n) permanently bad.
    fn all_latent() -> FaultPlan {
        FaultPlan::new(FaultConfig { latent_rate: 1.0, ..FaultConfig::default() }, 7)
    }

    #[test]
    fn latent_fault_fails_every_attempt_deterministically() {
        let mut d = disk();
        d.set_fault_plan(Some(all_latent()));
        for attempt in 0..8 {
            let err = d
                .submit_attempt(
                    SimTime::ZERO,
                    IoKind::Read,
                    SectorRange::new(64, 8),
                    IoTag::GuestImage,
                    attempt,
                )
                .expect_err("latent sector must fail");
            assert_eq!(err.kind, IoErrorKind::Latent);
            assert_eq!(err.sector, 64, "first faulting sector is stable");
        }
        assert_eq!(d.stats().injected_faults, 8);
        assert_eq!(d.stats().io_retries, 7);
        // Failed attempts never count as serviced requests.
        assert_eq!(d.stats().ops, 0);
        assert_eq!(d.stats().sectors_read, 0);
    }

    #[test]
    fn transient_bursts_are_bounded_by_max_burst() {
        let cfg = FaultConfig { transient_rate: 1.0, max_burst: 2, ..FaultConfig::default() };
        let mut d = disk();
        d.set_fault_plan(Some(FaultPlan::new(cfg, 11)));
        let range = SectorRange::new(0, 8);
        let mut t = SimTime::ZERO;
        for attempt in 0..2 {
            let err = d
                .submit_attempt(t, IoKind::Read, range, IoTag::GuestImage, attempt)
                .expect_err("attempts below max_burst fail");
            assert!(err.is_retryable());
            t = d.busy_until();
        }
        let io = d
            .submit_attempt(t, IoKind::Read, range, IoTag::GuestImage, 2)
            .expect("attempt at max_burst succeeds");
        assert!(io.finished > io.started);
        assert_eq!(d.stats().injected_faults, 2);
    }

    #[test]
    fn torn_write_reports_persisted_prefix() {
        let cfg = FaultConfig { torn_rate: 1.0, ..FaultConfig::default() };
        let mut d = disk();
        d.set_fault_plan(Some(FaultPlan::new(cfg, 3)));
        let err = d
            .submit(SimTime::ZERO, IoKind::Write, SectorRange::new(32, 16), IoTag::HostSwap)
            .expect_err("torn write must fail");
        match err.kind {
            IoErrorKind::Torn { written } => {
                assert_eq!(written, err.sector - 32);
                assert!(written < 16);
            }
            other => panic!("expected torn write, got {other:?}"),
        }
        assert_eq!(d.stats().torn_writes, 1);
        // Reads never tear.
        let plan = FaultPlan::new(*d.fault_plan().unwrap().config(), 3);
        assert!(plan.decide(false, 32, 16, 0).is_none());
    }

    #[test]
    fn timeouts_inflate_device_occupancy() {
        let cfg = FaultConfig { timeout_rate: 1.0, ..FaultConfig::default() };
        let mut clean = disk();
        let io =
            ok(clean.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::HostSwap));
        let nominal = io.finished - io.started;

        let mut d = disk();
        d.set_fault_plan(Some(FaultPlan::new(cfg, 5)));
        let err = d
            .submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::HostSwap)
            .expect_err("timeout must fail");
        assert_eq!(err.kind, IoErrorKind::Timeout);
        assert_eq!(err.wasted, nominal * 4);
        assert_eq!(d.stats().timed_out_requests, 1);
        assert_eq!(d.busy_until(), SimTime::ZERO + nominal * 4);
    }

    #[test]
    fn reset_stats_clears_fault_counters() {
        let mut d = disk();
        d.set_fault_plan(Some(all_latent()));
        let _ = d.submit_attempt(
            SimTime::ZERO,
            IoKind::Read,
            SectorRange::new(0, 8),
            IoTag::GuestImage,
            1,
        );
        assert_eq!(d.stats().injected_faults, 1);
        assert_eq!(d.stats().io_retries, 1);
        d.reset_stats();
        assert_eq!(d.stats().injected_faults, 0);
        assert_eq!(d.stats().io_retries, 0);
        assert_eq!(d.stats().timed_out_requests, 0);
        assert_eq!(d.stats().torn_writes, 0);
    }

    #[test]
    fn multi_queue_services_concurrently() {
        // 8 NVMe queues at depth 1: 8 scattered requests submitted at the
        // same instant all start immediately on distinct queues.
        let mut d = DiskModel::new(DiskSpec::nvme());
        assert_eq!(d.queue_count(), 8);
        let mut finishes = Vec::new();
        for i in 0..8u64 {
            let io = ok(d.submit(
                SimTime::ZERO,
                IoKind::Read,
                SectorRange::new(i << 20, 8),
                IoTag::HostSwap,
            ));
            assert_eq!(io.started, SimTime::ZERO, "request {i} must not queue");
            finishes.push(io.finished);
        }
        // The 9th waits for a slot.
        let io = ok(d.submit(
            SimTime::ZERO,
            IoKind::Read,
            SectorRange::new(1 << 30, 8),
            IoTag::HostSwap,
        ));
        assert!(io.started > SimTime::ZERO);
        assert_eq!(d.stats().max_inflight, 8, "all eight queues were saturated at once");
    }

    #[test]
    fn queue_depth_overlaps_commands_on_one_queue() {
        let spec = DiskSpec::hdd_7200();
        let mut d = DiskModel::with_queue_depth(spec, 2);
        assert_eq!(d.queue_depth(), 2);
        let a =
            ok(d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage));
        let b = ok(d.submit(
            SimTime::ZERO,
            IoKind::Read,
            SectorRange::new(1 << 20, 8),
            IoTag::GuestImage,
        ));
        assert_eq!(b.started, SimTime::ZERO, "second slot services concurrently");
        let c = ok(d.submit(
            SimTime::ZERO,
            IoKind::Read,
            SectorRange::new(1 << 24, 8),
            IoTag::GuestImage,
        ));
        assert_eq!(
            c.started,
            a.finished.min(b.finished),
            "third command waits for the earliest slot"
        );
    }

    #[test]
    fn out_of_order_completion_is_counted() {
        // Queue 0 gets a huge transfer, queue 1 a tiny one submitted
        // later: the tiny one completes first.
        let mut d = DiskModel::new(DiskSpec::nvme());
        let big = ok(d.submit(
            SimTime::ZERO,
            IoKind::Read,
            SectorRange::new(0, 64 * 1024),
            IoTag::GuestImage,
        ));
        let small = ok(d.submit(
            SimTime::ZERO,
            IoKind::Read,
            SectorRange::new(1 << 30, 8),
            IoTag::HostSwap,
        ));
        assert!(small.finished < big.finished, "completions land out of order");
        assert_eq!(d.stats().ooo_completions, 1);
    }

    #[test]
    fn single_queue_depth_one_never_reorders() {
        let mut d = disk();
        for i in 0..32u64 {
            ok(d.submit(
                SimTime::ZERO,
                IoKind::Read,
                SectorRange::new(i * (1 << 16), 8),
                IoTag::HostSwap,
            ));
        }
        assert_eq!(d.stats().ooo_completions, 0);
        assert_eq!(d.stats().max_inflight, 1);
    }

    #[test]
    fn batch_rings_one_doorbell() {
        let mut d = disk();
        let ranges: Vec<SectorRange> = (0..4).map(|p| SectorRange::for_page(0, p)).collect();
        ok(d.submit_batch(SimTime::ZERO, IoKind::Read, &ranges, IoTag::GuestImage));
        assert_eq!(d.stats().doorbells, 1, "a batch is one doorbell");
        ok(d.submit(d.busy_until(), IoKind::Read, SectorRange::new(1 << 20, 8), IoTag::HostSwap));
        ok(d.submit_writeback(d.busy_until(), SectorRange::new(1 << 21, 8), IoTag::HostSwap));
        assert_eq!(d.stats().doorbells, 3);
    }

    #[test]
    fn faulted_attempt_still_occupies_its_slot() {
        let mut d = DiskModel::with_queue_depth(DiskSpec::hdd_7200(), 1);
        d.set_fault_plan(Some(all_latent()));
        let err = d
            .submit(SimTime::ZERO, IoKind::Read, SectorRange::new(64, 8), IoTag::GuestImage)
            .expect_err("latent sector must fail");
        d.set_fault_plan(None);
        let io =
            ok(d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(128, 8), IoTag::GuestImage));
        assert_eq!(
            io.started,
            SimTime::ZERO + err.wasted,
            "the failed attempt held the queue slot for its service time"
        );
    }

    #[test]
    fn no_plan_means_no_faults() {
        let mut d = disk();
        assert!(d.fault_plan().is_none());
        for page in 0..512 {
            ok(d.submit(
                d.busy_until(),
                IoKind::Write,
                SectorRange::for_page(0, page),
                IoTag::HostSwap,
            ));
        }
        assert_eq!(d.stats().injected_faults, 0);
        assert_eq!(d.stats().ops, 512);
    }
}
