//! The block device model: head tracking, queueing, and I/O accounting.

use crate::geometry::SectorRange;
use crate::spec::DiskSpec;
use sim_core::{SimDuration, SimTime};
use sim_obs::{Event, EventLog, IoClass, IoDir};

/// Maps the request direction onto the event taxonomy.
fn io_dir(kind: IoKind) -> IoDir {
    match kind {
        IoKind::Read => IoDir::Read,
        IoKind::Write => IoDir::Write,
    }
}

/// Maps the request issuer onto the event taxonomy.
fn io_class(tag: IoTag) -> IoClass {
    match tag {
        IoTag::GuestImage => IoClass::GuestImage,
        IoTag::HostSwap => IoClass::HostSwap,
    }
}

/// Whether a request reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Data moves from disk to memory.
    Read,
    /// Data moves from memory to disk.
    Write,
}

/// What part of the storage stack issued a request; used to attribute
/// sectors to the counters the paper reports (e.g. Figure 9d counts sectors
/// written *to the host swap area* only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoTag {
    /// A guest virtual-disk image access (explicit guest I/O, guest swap,
    /// or Mapper re-reads of named pages).
    GuestImage,
    /// A host swap-area access (uncooperative swapping traffic).
    HostSwap,
}

/// The outcome of a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedIo {
    /// When the device started servicing the request (after queueing).
    pub started: SimTime,
    /// When the last sector transferred.
    pub finished: SimTime,
    /// Latency perceived by the issuer (`finished - submitted`).
    pub latency: SimDuration,
    /// True if the request streamed from the previous head position.
    pub sequential: bool,
}

/// Cumulative request accounting, overall and per [`IoTag`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Total requests serviced.
    pub ops: u64,
    /// Read requests serviced.
    pub read_ops: u64,
    /// Write requests serviced.
    pub write_ops: u64,
    /// Sectors read.
    pub sectors_read: u64,
    /// Sectors written.
    pub sectors_written: u64,
    /// Requests that streamed without repositioning.
    pub sequential_ops: u64,
    /// Requests that paid a seek.
    pub seeks: u64,
    /// Sectors read from the host swap area.
    pub swap_sectors_read: u64,
    /// Sectors written to the host swap area.
    pub swap_sectors_written: u64,
    /// Read requests against the host swap area.
    pub swap_read_ops: u64,
    /// Swap-area read requests that paid a seek — scattered slot content,
    /// the decayed-sequentiality signal.
    pub swap_read_seeks: u64,
    /// Write requests against the host swap area.
    pub swap_write_ops: u64,
    /// Total time the device spent busy.
    pub busy: SimDuration,
}

/// A single shared block device.
///
/// The model is intentionally simple — one head, FIFO servicing — because
/// the phenomena under study need only the *ratio* between streaming and
/// seeking, plus queueing delay when several VMs compete for the device
/// (the cascading effect of Figure 14).
///
/// # Examples
///
/// ```
/// use sim_core::SimTime;
/// use vswap_disk::{DiskModel, DiskSpec, IoKind, IoTag, SectorRange};
///
/// let mut disk = DiskModel::new(DiskSpec::hdd_7200());
/// let a = disk.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage);
/// let b = disk.submit(a.finished, IoKind::Read, SectorRange::new(8, 8), IoTag::GuestImage);
/// assert!(b.sequential);
/// assert!(b.latency < a.latency);
/// ```
#[derive(Debug, Clone)]
pub struct DiskModel {
    spec: DiskSpec,
    /// One past the last sector the head touched, `None` before first I/O.
    head: Option<u64>,
    /// The instant the device becomes idle.
    busy_until: SimTime,
    stats: DiskStats,
    /// Structured event sink; disabled (free) unless attached.
    events: EventLog,
}

impl DiskModel {
    /// Creates an idle device with the given timing parameters.
    pub fn new(spec: DiskSpec) -> Self {
        DiskModel {
            spec,
            head: None,
            busy_until: SimTime::ZERO,
            stats: DiskStats::default(),
            events: EventLog::disabled(),
        }
    }

    /// Attaches a structured event log; every request then emits
    /// issue/complete events.
    pub fn set_event_log(&mut self, events: EventLog) {
        self.events = events;
    }

    /// Returns the timing parameters.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Resets statistics (head position and queue state are kept).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// Returns the instant the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Submits a request at simulated instant `now` and returns its
    /// completion. Requests are serviced FIFO: if the device is busy the
    /// request waits.
    pub fn submit(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: SectorRange,
        tag: IoTag,
    ) -> CompletedIo {
        self.events.emit_with(now, None, || Event::DiskIssue {
            dir: io_dir(kind),
            class: io_class(tag),
            sector: range.start(),
            sectors: range.len(),
        });
        let started = now.max(self.busy_until);
        let gap = match self.head {
            None => Some(u64::MAX),
            Some(end) if end == range.start() => None,
            Some(end) => Some(end.abs_diff(range.start())),
        };
        let service = self.spec.request_latency(gap, range.len());
        let finished = started + service;

        self.head = Some(range.end());
        self.busy_until = finished;

        let sequential = gap.is_none();
        self.stats.ops += 1;
        self.stats.busy += service;
        if sequential {
            self.stats.sequential_ops += 1;
        } else {
            self.stats.seeks += 1;
        }
        match kind {
            IoKind::Read => {
                self.stats.read_ops += 1;
                self.stats.sectors_read += range.len();
                if tag == IoTag::HostSwap {
                    self.stats.swap_read_ops += 1;
                    self.stats.swap_sectors_read += range.len();
                    if !sequential {
                        self.stats.swap_read_seeks += 1;
                    }
                }
            }
            IoKind::Write => {
                self.stats.write_ops += 1;
                self.stats.sectors_written += range.len();
                if tag == IoTag::HostSwap {
                    self.stats.swap_write_ops += 1;
                    self.stats.swap_sectors_written += range.len();
                }
            }
        }

        self.events.emit_with(finished, None, || Event::DiskComplete {
            dir: io_dir(kind),
            class: io_class(tag),
            sector: range.start(),
            sectors: range.len(),
            latency: finished - now,
            sequential,
        });
        CompletedIo { started, finished, latency: finished - now, sequential }
    }

    /// Submits a *write-behind* request: the write is queued behind the
    /// elevator, costs only its transfer time on the device, and does not
    /// disturb the head position the foreground read stream depends on.
    /// The returned completion reflects device occupancy, not a latency
    /// any caller should wait for.
    pub fn submit_writeback(
        &mut self,
        now: SimTime,
        range: SectorRange,
        tag: IoTag,
    ) -> CompletedIo {
        self.events.emit_with(now, None, || Event::DiskIssue {
            dir: IoDir::Write,
            class: io_class(tag),
            sector: range.start(),
            sectors: range.len(),
        });
        let started = now.max(self.busy_until);
        let service = self.spec.request_latency(None, range.len());
        let finished = started + service;
        self.busy_until = finished;
        self.stats.ops += 1;
        self.stats.busy += service;
        self.stats.sequential_ops += 1;
        self.stats.write_ops += 1;
        self.stats.sectors_written += range.len();
        if tag == IoTag::HostSwap {
            self.stats.swap_write_ops += 1;
            self.stats.swap_sectors_written += range.len();
        }
        self.events.emit_with(finished, None, || Event::DiskComplete {
            dir: IoDir::Write,
            class: io_class(tag),
            sector: range.start(),
            sectors: range.len(),
            latency: finished - now,
            sequential: true,
        });
        CompletedIo { started, finished, latency: finished - now, sequential: true }
    }

    /// Submits a batch of ranges as one logical operation (e.g. a readahead
    /// window). Contiguous ranges are merged so a well-clustered batch pays
    /// a single positioning cost. Returns the completion of the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `ranges` is empty.
    pub fn submit_batch(
        &mut self,
        now: SimTime,
        kind: IoKind,
        ranges: &[SectorRange],
        tag: IoTag,
    ) -> CompletedIo {
        assert!(!ranges.is_empty(), "batch must contain at least one range");
        let merged = merge_ranges(ranges);
        let mut last: Option<CompletedIo> = None;
        for range in merged {
            let completed = self.submit(now, kind, range, tag);
            last = Some(match last {
                None => completed,
                Some(prev) => CompletedIo {
                    started: prev.started,
                    finished: completed.finished,
                    latency: completed.finished - now,
                    sequential: prev.sequential && completed.sequential,
                },
            });
        }
        last.expect("batch was non-empty")
    }
}

/// Sorts and merges overlapping/abutting ranges into maximal runs.
pub(crate) fn merge_ranges(ranges: &[SectorRange]) -> Vec<SectorRange> {
    let mut sorted: Vec<SectorRange> = ranges.to_vec();
    sorted.sort_by_key(|r| r.start());
    let mut out: Vec<SectorRange> = Vec::with_capacity(sorted.len());
    for r in sorted {
        match out.last_mut() {
            Some(last) if last.end() >= r.start() => {
                let end = last.end().max(r.end());
                *last = SectorRange::new(last.start(), end - last.start());
            }
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PAGE_SECTORS;

    fn disk() -> DiskModel {
        DiskModel::new(DiskSpec::hdd_7200())
    }

    #[test]
    fn first_access_pays_full_seek() {
        let mut d = disk();
        let io = d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage);
        assert!(!io.sequential);
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn contiguous_requests_stream() {
        let mut d = disk();
        let a = d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage);
        let b = d.submit(a.finished, IoKind::Read, SectorRange::new(8, 8), IoTag::GuestImage);
        assert!(b.sequential);
        assert!(b.latency < a.latency / 10);
    }

    #[test]
    fn queueing_delays_later_requests() {
        let mut d = disk();
        let a = d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage);
        // Submitted at t=0 but device busy until `a.finished`.
        let b = d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(8, 8), IoTag::GuestImage);
        assert_eq!(b.started, a.finished);
        assert!(b.latency >= a.latency);
    }

    #[test]
    fn swap_tag_attributes_sectors() {
        let mut d = disk();
        d.submit(SimTime::ZERO, IoKind::Write, SectorRange::new(0, 8), IoTag::HostSwap);
        d.submit(SimTime::ZERO, IoKind::Write, SectorRange::new(100, 8), IoTag::GuestImage);
        d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::HostSwap);
        let s = d.stats();
        assert_eq!(s.swap_sectors_written, 8);
        assert_eq!(s.swap_sectors_read, 8);
        assert_eq!(s.sectors_written, 16);
        assert_eq!(s.swap_write_ops, 1);
        assert_eq!(s.swap_read_ops, 1);
    }

    #[test]
    fn batch_merges_contiguous_pages() {
        let mut d = disk();
        let ranges: Vec<SectorRange> = (0..4).map(|p| SectorRange::for_page(0, p)).collect();
        let io = d.submit_batch(SimTime::ZERO, IoKind::Read, &ranges, IoTag::GuestImage);
        // One merged request: one op, one seek.
        assert_eq!(d.stats().ops, 1);
        assert_eq!(d.stats().sectors_read, 4 * PAGE_SECTORS);
        assert!(io.finished > io.started);
    }

    #[test]
    fn batch_scattered_pages_pay_multiple_seeks() {
        let mut d = disk();
        let ranges = vec![
            SectorRange::for_page(0, 0),
            SectorRange::for_page(1 << 20, 0),
            SectorRange::for_page(1 << 24, 0),
        ];
        d.submit_batch(SimTime::ZERO, IoKind::Read, &ranges, IoTag::HostSwap);
        assert_eq!(d.stats().ops, 3);
        assert_eq!(d.stats().seeks, 3);
    }

    #[test]
    fn merge_ranges_handles_overlap_and_order() {
        let merged = merge_ranges(&[
            SectorRange::new(16, 8),
            SectorRange::new(0, 8),
            SectorRange::new(8, 10),
        ]);
        assert_eq!(merged, vec![SectorRange::new(0, 24)]);
    }

    #[test]
    fn reset_stats_keeps_head() {
        let mut d = disk();
        let a = d.submit(SimTime::ZERO, IoKind::Read, SectorRange::new(0, 8), IoTag::GuestImage);
        d.reset_stats();
        assert_eq!(d.stats().ops, 0);
        let b = d.submit(a.finished, IoKind::Read, SectorRange::new(8, 8), IoTag::GuestImage);
        assert!(b.sequential, "head position survives stats reset");
    }

    #[test]
    #[should_panic(expected = "at least one range")]
    fn empty_batch_panics() {
        disk().submit_batch(SimTime::ZERO, IoKind::Read, &[], IoTag::GuestImage);
    }
}
