//! Carves one physical device into non-overlapping regions.
//!
//! The simulated host owns a single physical disk holding every guest's
//! disk image plus the host swap area, mirroring the paper's testbed (one
//! 2 TB drive). Regions are allocated once at machine construction and give
//! each subsystem a private, page-aligned sector window.

use crate::geometry::{SectorRange, PAGE_SECTORS};
use std::error::Error;
use std::fmt;

/// A page-aligned window of the physical device owned by one subsystem.
///
/// # Examples
///
/// ```
/// use vswap_disk::{DiskLayout, PAGE_SECTORS};
///
/// let mut layout = DiskLayout::new(1 << 20);
/// let region = layout.alloc_region("image", 16)?;
/// assert_eq!(region.pages(), 16);
/// assert_eq!(region.page_range(3).start(), region.base() + 3 * PAGE_SECTORS);
/// # Ok::<(), vswap_disk::LayoutError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiskRegion {
    base: u64,
    pages: u64,
}

impl DiskRegion {
    /// First sector of the region.
    pub const fn base(self) -> u64 {
        self.base
    }

    /// Size of the region in 4 KiB pages.
    pub const fn pages(self) -> u64 {
        self.pages
    }

    /// Size of the region in sectors.
    pub const fn sectors(self) -> u64 {
        self.pages * PAGE_SECTORS
    }

    /// The sector range covering page index `page` of the region.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of bounds.
    pub fn page_range(self, page: u64) -> SectorRange {
        assert!(page < self.pages, "page {page} out of region bounds ({})", self.pages);
        SectorRange::for_page(self.base, page)
    }

    /// The sector range covering `count` pages starting at `page`.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds the region or `count` is zero.
    pub fn page_span(self, page: u64, count: u64) -> SectorRange {
        assert!(count > 0, "span must be non-empty");
        assert!(page + count <= self.pages, "span exceeds region bounds");
        SectorRange::new(self.base + page * PAGE_SECTORS, count * PAGE_SECTORS)
    }

    /// True if the sector range lies wholly inside the region.
    pub fn contains(self, range: SectorRange) -> bool {
        range.start() >= self.base && range.end() <= self.base + self.sectors()
    }
}

/// Error returned when region allocation exceeds the device capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutError {
    requested_pages: u64,
    free_pages: u64,
    label: String,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot allocate region `{}`: {} pages requested, {} pages free",
            self.label, self.requested_pages, self.free_pages
        )
    }
}

impl Error for LayoutError {}

/// Allocates non-overlapping [`DiskRegion`]s from a device of fixed size.
#[derive(Debug, Clone)]
pub struct DiskLayout {
    total_pages: u64,
    next_page: u64,
    regions: Vec<(String, DiskRegion)>,
}

impl DiskLayout {
    /// Creates a layout for a device with `total_pages` 4 KiB pages.
    pub fn new(total_pages: u64) -> Self {
        DiskLayout { total_pages, next_page: 0, regions: Vec::new() }
    }

    /// Allocates the next `pages` pages as a named region.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if fewer than `pages` pages remain.
    pub fn alloc_region(&mut self, label: &str, pages: u64) -> Result<DiskRegion, LayoutError> {
        let free = self.total_pages - self.next_page;
        if pages > free {
            return Err(LayoutError {
                requested_pages: pages,
                free_pages: free,
                label: label.to_owned(),
            });
        }
        let region = DiskRegion { base: self.next_page * PAGE_SECTORS, pages };
        self.next_page += pages;
        self.regions.push((label.to_owned(), region));
        Ok(region)
    }

    /// Pages not yet allocated to any region.
    pub fn free_pages(&self) -> u64 {
        self.total_pages - self.next_page
    }

    /// Iterates over `(label, region)` pairs in allocation order.
    pub fn regions(&self) -> impl Iterator<Item = (&str, DiskRegion)> {
        self.regions.iter().map(|(l, r)| (l.as_str(), *r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut layout = DiskLayout::new(100);
        let a = layout.alloc_region("a", 10).unwrap();
        let b = layout.alloc_region("b", 20).unwrap();
        assert_eq!(a.base(), 0);
        assert_eq!(b.base(), 10 * PAGE_SECTORS);
        assert!(!a.page_range(9).overlaps(b.page_range(0)));
        assert_eq!(layout.free_pages(), 70);
    }

    #[test]
    fn allocation_failure_reports_sizes() {
        let mut layout = DiskLayout::new(5);
        let err = layout.alloc_region("big", 6).unwrap_err();
        assert!(err.to_string().contains("6 pages requested"));
        assert!(err.to_string().contains("5 pages free"));
    }

    #[test]
    fn page_span_covers_run() {
        let mut layout = DiskLayout::new(100);
        let r = layout.alloc_region("r", 10).unwrap();
        let span = r.page_span(2, 3);
        assert_eq!(span.start(), r.base() + 2 * PAGE_SECTORS);
        assert_eq!(span.len(), 3 * PAGE_SECTORS);
        assert!(r.contains(span));
    }

    #[test]
    #[should_panic(expected = "out of region bounds")]
    fn page_range_bounds_checked() {
        let mut layout = DiskLayout::new(10);
        let r = layout.alloc_region("r", 2).unwrap();
        let _ = r.page_range(2);
    }

    #[test]
    fn region_listing_preserves_order() {
        let mut layout = DiskLayout::new(10);
        layout.alloc_region("first", 1).unwrap();
        layout.alloc_region("second", 1).unwrap();
        let labels: Vec<&str> = layout.regions().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["first", "second"]);
    }
}
