//! Mechanical timing parameters of the modelled device.

use sim_core::SimDuration;

/// Timing parameters of a block device.
///
/// Latency of a request is modelled as
///
/// ```text
/// positioning + sectors * per-sector transfer time
/// ```
///
/// where *positioning* is zero for a request that begins exactly where the
/// previous one ended (streaming), [`DiskSpec::near_seek`] +
/// rotational delay for a short hop, and [`DiskSpec::avg_seek`] + rotational
/// delay otherwise.
///
/// # Examples
///
/// ```
/// use vswap_disk::DiskSpec;
///
/// let hdd = DiskSpec::hdd_7200();
/// assert!(hdd.avg_seek > hdd.near_seek);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskSpec {
    /// Average seek time for a long head movement.
    pub avg_seek: SimDuration,
    /// Seek time for a short hop (gap below [`DiskSpec::near_gap_sectors`]).
    pub near_seek: SimDuration,
    /// Seek time for a mid-range hop (gap below
    /// [`DiskSpec::mid_gap_sectors`]) — movements within a narrow zone of
    /// the platter, e.g. inside a swap area, are much cheaper than
    /// full-stroke averages.
    pub mid_seek: SimDuration,
    /// Average rotational delay (half a revolution).
    pub rotational: SimDuration,
    /// Time to transfer one 512-byte sector once positioned.
    pub sector_transfer: SimDuration,
    /// Gaps (in sectors) smaller than this count as a "near" seek.
    pub near_gap_sectors: u64,
    /// Gaps smaller than this count as a "mid" seek.
    pub mid_gap_sectors: u64,
    /// Fixed per-request controller/command overhead.
    pub command_overhead: SimDuration,
    /// Hardware submission/completion queue pairs the device exposes.
    /// Rotational drives and SATA SSDs have a single queue (one head /
    /// one NCQ ring); NVMe devices expose several, each servicing
    /// commands independently.
    pub queues: u32,
}

impl DiskSpec {
    /// A 7200 RPM enterprise hard drive, calibrated to the paper's testbed
    /// (Seagate Constellation, 2 TB): ~8.5 ms average seek, 4.16 ms average
    /// rotational delay, ~140 MB/s sequential throughput.
    pub fn hdd_7200() -> Self {
        DiskSpec {
            avg_seek: SimDuration::from_micros(8500),
            near_seek: SimDuration::from_micros(1200),
            mid_seek: SimDuration::from_micros(2800),
            rotational: SimDuration::from_micros(4160),
            // 140 MB/s => 512 B take ~3.66 us.
            sector_transfer: SimDuration::from_nanos(3660),
            near_gap_sectors: 2048,
            mid_gap_sectors: 4 * 1024 * 1024, // within a ~2 GiB zone
            command_overhead: SimDuration::from_micros(60),
            queues: 1,
        }
    }

    /// A SATA solid-state drive: no mechanical positioning, uniform access.
    /// Used by the ablation benches ("beneficial for systems that employ
    /// SSDs" — §5.1 of the paper).
    pub fn ssd() -> Self {
        DiskSpec {
            avg_seek: SimDuration::from_micros(30),
            near_seek: SimDuration::from_micros(30),
            mid_seek: SimDuration::from_micros(30),
            rotational: SimDuration::ZERO,
            // 500 MB/s => 512 B take ~1.02 us.
            sector_transfer: SimDuration::from_nanos(1020),
            near_gap_sectors: 0,
            mid_gap_sectors: 0,
            command_overhead: SimDuration::from_micros(20),
            // SATA: one NCQ ring. Depth comes from the host config.
            queues: 1,
        }
    }

    /// An NVMe flash drive: flat latency (no seek model — the only
    /// "positioning" cost is a small flash random-access penalty),
    /// per-queue parallelism (8 hardware queue pairs), ~3 GB/s
    /// sequential throughput, ~10 us command overhead.
    pub fn nvme() -> Self {
        DiskSpec {
            // No mechanical positioning: "seeks" cost only the flash
            // translation-layer lookup, a few microseconds at worst.
            avg_seek: SimDuration::from_micros(6),
            near_seek: SimDuration::from_micros(2),
            mid_seek: SimDuration::from_micros(4),
            rotational: SimDuration::ZERO,
            // 3 GB/s => 512 B take ~170 ns.
            sector_transfer: SimDuration::from_nanos(170),
            near_gap_sectors: 2048,
            mid_gap_sectors: 4 * 1024 * 1024,
            command_overhead: SimDuration::from_micros(10),
            queues: 8,
        }
    }

    /// Latency of a request of `sectors` sectors given the head gap
    /// (`None` = streaming / contiguous with the previous request).
    pub fn request_latency(&self, gap: Option<u64>, sectors: u64) -> SimDuration {
        // Rotational delay is charged only on long strokes: short hops
        // inside a zone are absorbed by command queueing (NCQ reorders a
        // full queue so the platter rarely costs a full half-turn).
        let positioning = match gap {
            None => SimDuration::ZERO,
            Some(g) if g <= self.near_gap_sectors => self.near_seek,
            Some(g) if g <= self.mid_gap_sectors => self.mid_seek,
            Some(_) => self.avg_seek + self.rotational,
        };
        self.command_overhead + positioning + self.sector_transfer * sectors
    }
}

impl Default for DiskSpec {
    fn default() -> Self {
        DiskSpec::hdd_7200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PAGE_SECTORS;

    #[test]
    fn sequential_is_much_cheaper_than_random() {
        let spec = DiskSpec::hdd_7200();
        let seq = spec.request_latency(None, PAGE_SECTORS);
        let rand = spec.request_latency(Some(1 << 26), PAGE_SECTORS);
        assert!(
            rand.as_nanos() > 50 * seq.as_nanos(),
            "random 4K ({rand}) should dwarf sequential 4K ({seq})"
        );
    }

    #[test]
    fn seek_tiers_are_ordered() {
        let spec = DiskSpec::hdd_7200();
        let near = spec.request_latency(Some(100), PAGE_SECTORS);
        let mid = spec.request_latency(Some(1 << 20), PAGE_SECTORS);
        let far = spec.request_latency(Some(1 << 26), PAGE_SECTORS);
        assert!(near < mid, "near ({near}) < mid ({mid})");
        assert!(mid < far, "mid ({mid}) < far ({far})");
    }

    #[test]
    fn near_seek_cheaper_than_far_seek() {
        let spec = DiskSpec::hdd_7200();
        let near = spec.request_latency(Some(100), PAGE_SECTORS);
        let far = spec.request_latency(Some(1 << 24), PAGE_SECTORS);
        assert!(near < far);
    }

    #[test]
    fn transfer_scales_with_sectors() {
        let spec = DiskSpec::hdd_7200();
        let one = spec.request_latency(None, 1);
        let many = spec.request_latency(None, 100);
        assert_eq!((many - one).as_nanos(), spec.sector_transfer.as_nanos() * 99);
    }

    #[test]
    fn ssd_has_flat_latency() {
        let spec = DiskSpec::ssd();
        let seq = spec.request_latency(None, PAGE_SECTORS);
        let rand = spec.request_latency(Some(1 << 20), PAGE_SECTORS);
        // SSD random penalty is small (< 3x).
        assert!(rand.as_nanos() < 3 * seq.as_nanos());
    }

    #[test]
    fn nvme_is_flat_with_small_random_penalty() {
        let spec = DiskSpec::nvme();
        let seq = spec.request_latency(None, PAGE_SECTORS);
        // The worst random access pays no more than a 2x penalty over
        // streaming: there is no seek model, only a flash lookup.
        for gap in [1u64, 1 << 10, 1 << 20, 1 << 26, u64::MAX] {
            let rand = spec.request_latency(Some(gap), PAGE_SECTORS);
            assert!(
                rand.as_nanos() <= 2 * seq.as_nanos(),
                "gap {gap}: random 4K ({rand}) must stay within 2x of sequential ({seq})"
            );
        }
        assert_eq!(spec.rotational, SimDuration::ZERO, "no platter to wait for");
    }

    #[test]
    fn nvme_is_much_faster_than_hdd_and_multi_queue() {
        let nvme = DiskSpec::nvme();
        let hdd = DiskSpec::hdd_7200();
        let nvme_rand = nvme.request_latency(Some(1 << 26), PAGE_SECTORS);
        let hdd_rand = hdd.request_latency(Some(1 << 26), PAGE_SECTORS);
        assert!(hdd_rand.as_nanos() > 100 * nvme_rand.as_nanos());
        assert!(nvme.queues > 1, "NVMe exposes several hardware queues");
        assert_eq!(hdd.queues, 1);
        assert_eq!(DiskSpec::ssd().queues, 1, "SATA has a single NCQ ring");
    }
}
