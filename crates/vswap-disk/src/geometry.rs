//! Sector/page geometry shared by the disk, memory, and OS models.

use std::fmt;

/// Bytes per disk sector (512, the classic logical sector size).
pub const SECTOR_SIZE: u64 = 512;

/// Bytes per memory page (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// Sectors per memory page.
pub const PAGE_SECTORS: u64 = PAGE_SIZE / SECTOR_SIZE;

/// A sector index on the physical device.
///
/// # Examples
///
/// ```
/// use vswap_disk::SectorAddr;
///
/// let s = SectorAddr::new(8);
/// assert_eq!(s.get(), 8);
/// assert_eq!(s.offset(8).get(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SectorAddr(u64);

impl SectorAddr {
    /// Creates a sector address.
    pub const fn new(sector: u64) -> Self {
        SectorAddr(sector)
    }

    /// Returns the raw sector index.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the address `delta` sectors later.
    pub const fn offset(self, delta: u64) -> SectorAddr {
        SectorAddr(self.0 + delta)
    }
}

impl fmt::Display for SectorAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sector {}", self.0)
    }
}

impl From<u64> for SectorAddr {
    fn from(sector: u64) -> Self {
        SectorAddr(sector)
    }
}

/// A half-open, contiguous run of sectors `[start, start + len)`.
///
/// # Examples
///
/// ```
/// use vswap_disk::SectorRange;
///
/// let r = SectorRange::new(8, 16);
/// assert_eq!(r.end(), 24);
/// assert!(r.contains(8) && r.contains(23) && !r.contains(24));
/// assert_eq!(r.pages().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SectorRange {
    start: u64,
    len: u64,
}

impl SectorRange {
    /// Creates a range starting at `start`, `len` sectors long.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(start: u64, len: u64) -> Self {
        assert!(len > 0, "sector range must be non-empty");
        SectorRange { start, len }
    }

    /// Creates the range covering one 4 KiB page worth of sectors starting
    /// at page index `page` within a page-aligned region based at `base`.
    pub fn for_page(base: u64, page: u64) -> Self {
        SectorRange::new(base + page * PAGE_SECTORS, PAGE_SECTORS)
    }

    /// First sector of the range.
    pub const fn start(self) -> u64 {
        self.start
    }

    /// One past the last sector of the range.
    pub const fn end(self) -> u64 {
        self.start + self.len
    }

    /// Number of sectors.
    pub const fn len(self) -> u64 {
        self.len
    }

    /// Sector ranges are never empty; always `false`.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// Number of bytes covered.
    pub const fn bytes(self) -> u64 {
        self.len * SECTOR_SIZE
    }

    /// True if `sector` falls within the range.
    pub const fn contains(self, sector: u64) -> bool {
        sector >= self.start && sector < self.end()
    }

    /// True if the ranges overlap.
    pub const fn overlaps(self, other: SectorRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// True if `other` begins exactly where `self` ends (back-to-back).
    pub const fn abuts(self, other: SectorRange) -> bool {
        self.end() == other.start
    }

    /// Splits the range into page-sized sub-ranges; a final sub-page tail
    /// (if the range is not a page multiple) is yielded as-is.
    pub fn pages(self) -> impl Iterator<Item = SectorRange> {
        let mut cursor = self.start;
        let end = self.end();
        std::iter::from_fn(move || {
            if cursor >= end {
                None
            } else {
                let len = PAGE_SECTORS.min(end - cursor);
                let r = SectorRange::new(cursor, len);
                cursor += len;
                Some(r)
            }
        })
    }
}

impl fmt::Display for SectorRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sectors [{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_geometry_is_consistent() {
        assert_eq!(PAGE_SECTORS * SECTOR_SIZE, PAGE_SIZE);
    }

    #[test]
    fn range_bounds() {
        let r = SectorRange::new(10, 5);
        assert_eq!(r.start(), 10);
        assert_eq!(r.end(), 15);
        assert_eq!(r.len(), 5);
        assert_eq!(r.bytes(), 5 * SECTOR_SIZE);
        assert!(r.contains(10));
        assert!(r.contains(14));
        assert!(!r.contains(15));
    }

    #[test]
    fn overlap_and_abut() {
        let a = SectorRange::new(0, 8);
        let b = SectorRange::new(8, 8);
        let c = SectorRange::new(4, 8);
        assert!(!a.overlaps(b));
        assert!(a.abuts(b));
        assert!(a.overlaps(c));
        assert!(c.overlaps(a));
        assert!(!b.abuts(a));
    }

    #[test]
    fn pages_splits_range() {
        let r = SectorRange::new(0, PAGE_SECTORS * 2 + 3);
        let pages: Vec<_> = r.pages().collect();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0], SectorRange::new(0, PAGE_SECTORS));
        assert_eq!(pages[1], SectorRange::new(PAGE_SECTORS, PAGE_SECTORS));
        assert_eq!(pages[2], SectorRange::new(PAGE_SECTORS * 2, 3));
    }

    #[test]
    fn for_page_offsets_by_page_index() {
        let r = SectorRange::for_page(100, 3);
        assert_eq!(r.start(), 100 + 3 * PAGE_SECTORS);
        assert_eq!(r.len(), PAGE_SECTORS);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = SectorRange::new(0, 0);
    }
}
