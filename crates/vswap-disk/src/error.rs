//! Typed I/O errors: every way a submitted request can fail.

use sim_core::SimDuration;

/// Why a request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoErrorKind {
    /// `submit_batch` was called with no ranges — a caller bug surfaced
    /// as a typed error rather than a panic.
    EmptyBatch,
    /// The request touched a permanently bad sector; retrying the same
    /// sectors can never succeed.
    Latent,
    /// A transient failure; the same request may succeed on retry.
    Transient,
    /// The request exceeded its service deadline and was aborted.
    Timeout,
    /// A multi-sector write tore: `written` sectors reached the medium,
    /// the rest did not. Rewriting the whole range is safe (writes are
    /// idempotent at this layer).
    Torn {
        /// Sectors persisted before the tear.
        written: u64,
    },
}

impl IoErrorKind {
    /// True if retrying the same request can succeed.
    pub fn is_retryable(self) -> bool {
        matches!(self, IoErrorKind::Transient | IoErrorKind::Timeout | IoErrorKind::Torn { .. })
    }
}

/// A failed disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError {
    /// How the request failed.
    pub kind: IoErrorKind,
    /// The first faulting sector (0 for [`IoErrorKind::EmptyBatch`]).
    pub sector: u64,
    /// Simulated time the failed attempt occupied the device.
    pub wasted: SimDuration,
}

impl IoError {
    /// True if retrying the same request can succeed.
    pub fn is_retryable(&self) -> bool {
        self.kind.is_retryable()
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            IoErrorKind::EmptyBatch => write!(f, "empty batch submitted"),
            IoErrorKind::Latent => write!(f, "latent media error at sector {}", self.sector),
            IoErrorKind::Transient => write!(f, "transient I/O error at sector {}", self.sector),
            IoErrorKind::Timeout => write!(f, "request timed out at sector {}", self.sector),
            IoErrorKind::Torn { written } => {
                write!(f, "torn write at sector {} ({written} sectors persisted)", self.sector)
            }
        }
    }
}

impl std::error::Error for IoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_the_kind() {
        assert!(!IoErrorKind::EmptyBatch.is_retryable());
        assert!(!IoErrorKind::Latent.is_retryable());
        assert!(IoErrorKind::Transient.is_retryable());
        assert!(IoErrorKind::Timeout.is_retryable());
        assert!(IoErrorKind::Torn { written: 3 }.is_retryable());
    }

    #[test]
    fn errors_render_their_sector() {
        let e = IoError { kind: IoErrorKind::Latent, sector: 42, wasted: SimDuration::ZERO };
        assert!(e.to_string().contains("sector 42"));
        let torn = IoError {
            kind: IoErrorKind::Torn { written: 5 },
            sector: 9,
            wasted: SimDuration::ZERO,
        };
        assert!(torn.to_string().contains("5 sectors persisted"));
    }
}
