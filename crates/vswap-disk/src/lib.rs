//! A sector-addressed block device model.
//!
//! The VSwapper paper's findings are, at bottom, about *where bytes land on a
//! disk* and *in what order they are read back*: silent swap writes burn
//! write bandwidth, decayed swap sequentiality turns sequential reads into
//! random ones, and the Swap Mapper wins by re-reading evicted pages from the
//! sequential guest disk image instead of a scattered host swap area. This
//! crate models exactly that level of detail:
//!
//! * [`geometry`] — sectors, pages, and sector ranges,
//! * [`spec`] — mechanical timing parameters ([`DiskSpec::hdd_7200`] matches
//!   the paper's Seagate Constellation testbed disk),
//! * [`model`] — the device itself: head position, queueing, per-request
//!   latency, and sequential-access detection,
//! * [`layout`] — carves one physical device into regions (guest disk
//!   images, the host swap area).
//!
//! # Examples
//!
//! ```
//! use sim_core::SimTime;
//! use vswap_disk::{DiskModel, DiskSpec, IoKind, IoTag, SectorRange};
//!
//! let mut disk = DiskModel::new(DiskSpec::hdd_7200());
//! let io = disk
//!     .submit(
//!         SimTime::ZERO,
//!         IoKind::Read,
//!         SectorRange::new(0, 8), // one 4 KiB page
//!         IoTag::GuestImage,
//!     )
//!     .expect("no fault plan installed");
//! assert!(io.latency.as_nanos() > 0);
//! ```
//!
//! # Fault injection
//!
//! Install a deterministic [`FaultPlan`] (from the [`sim_fault`] crate,
//! re-exported here) with [`DiskModel::set_fault_plan`] and every submit
//! path becomes fallible with a typed [`IoError`]. With no plan installed
//! — the default — no request ever fails and nothing is paid for the
//! machinery.

#![warn(missing_docs)]

pub mod error;
pub mod geometry;
pub mod layout;
pub mod model;
pub mod spec;

pub use error::{IoError, IoErrorKind};
pub use geometry::{SectorAddr, SectorRange, PAGE_SECTORS, PAGE_SIZE, SECTOR_SIZE};
pub use layout::{DiskLayout, DiskRegion, LayoutError};
pub use model::{merge_ranges, CompletedIo, DiskModel, DiskStats, IoKind, IoTag};
pub use sim_fault::{
    entity_key, ClusterFaultConfig, ClusterFaultPlan, ClusterFaultProfile, FaultConfig, FaultKind,
    FaultPlan, FaultProfile, InjectedFault, LinkFault,
};
pub use spec::DiskSpec;
