#!/usr/bin/env python3
"""CI gate over the checked-in BENCH_<n>.json performance trajectory.

The repo keeps one ``BENCH_<n>.json`` per performance-relevant PR, each
written by ``vswap verify-tables --bench-out``. This script validates
the whole trajectory, not just the newest file:

* every ``BENCH_<n>.json`` at the repo root carries the full timing
  schema with sane values — including every ``phases`` entry
  (``phase`` name + non-negative ``wall_secs``, no duplicates) and
  every ``experiments`` row;
* the indices are contiguous (a renamed or dropped entry breaks the
  history the trajectory exists to preserve);
* the suite only grows: experiment count and pages simulated are
  monotone non-decreasing along the trajectory.

With ``--current <file>`` it additionally gates a fresh run: its
serial pages-simulated/sec must reach at least half of the latest
reference's. The 2x allowance absorbs runner jitter; a reintroduced
hot-path allocation or eager table fill still trips it. Re-baseline by
checking in the next ``BENCH_<n+1>.json`` alongside intentional
performance-relevant changes.

Usage:
    python3 scripts/bench_gate.py [--root DIR] [--current BENCH_smoke.json]
"""

import argparse
import json
import pathlib
import re
import sys

# Field -> accepted types. bool is an int subclass in Python; reject it
# explicitly where it would mask a schema bug.
SCHEMA = {
    "scale": str,
    "jobs": int,
    "serial_wall_secs": (int, float),
    "parallel_wall_secs": (int, float),
    "speedup": (int, float),
    "pages_simulated": int,
    "serial_pages_per_sec": (int, float),
    "parallel_pages_per_sec": (int, float),
    "events_emitted": int,
    "phases": list,
    "experiments": list,
}

EXPERIMENT_SCHEMA = {
    "id": str,
    "units": int,
    "serial_secs": (int, float),
    "parallel_busy_secs": (int, float),
}

PHASE_SCHEMA = {
    "phase": str,
    "wall_secs": (int, float),
}

POSITIVE = (
    "serial_wall_secs",
    "parallel_wall_secs",
    "pages_simulated",
    "serial_pages_per_sec",
    "parallel_pages_per_sec",
)


def check_fields(errors, label, obj, schema):
    for field, types in schema.items():
        if field not in obj:
            errors.append(f"{label}: missing field `{field}`")
        elif isinstance(obj[field], bool) or not isinstance(obj[field], types):
            errors.append(
                f"{label}: field `{field}` has type "
                f"{type(obj[field]).__name__}, expected {types}"
            )


def validate(label, data):
    """Returns a list of schema violations for one BENCH document."""
    errors = []
    if not isinstance(data, dict):
        return [f"{label}: top level must be a JSON object"]
    check_fields(errors, label, data, SCHEMA)
    for field in POSITIVE:
        value = data.get(field)
        if isinstance(value, (int, float)) and not isinstance(value, bool) and value <= 0:
            errors.append(f"{label}: `{field}` must be positive, got {value}")
    if data.get("scale") not in (None, "smoke"):
        errors.append(f"{label}: `scale` must be \"smoke\", got {data['scale']!r}")
    phases = data.get("phases")
    if isinstance(phases, list):
        if not phases:
            errors.append(f"{label}: `phases` must not be empty")
        seen_phases = set()
        for i, ph in enumerate(phases):
            if not isinstance(ph, dict):
                errors.append(f"{label}: phases[{i}] must be an object")
                continue
            check_fields(errors, f"{label}: phases[{i}]", ph, PHASE_SCHEMA)
            secs = ph.get("wall_secs")
            if isinstance(secs, (int, float)) and not isinstance(secs, bool) and secs < 0:
                errors.append(f"{label}: phases[{i}].wall_secs must be non-negative, got {secs}")
            name = ph.get("phase")
            if name in seen_phases:
                errors.append(f"{label}: duplicate phase `{name}`")
            seen_phases.add(name)
    experiments = data.get("experiments")
    if isinstance(experiments, list):
        if not experiments:
            errors.append(f"{label}: `experiments` must not be empty")
        seen = set()
        for i, exp in enumerate(experiments):
            if not isinstance(exp, dict):
                errors.append(f"{label}: experiments[{i}] must be an object")
                continue
            check_fields(errors, f"{label}: experiments[{i}]", exp, EXPERIMENT_SCHEMA)
            eid = exp.get("id")
            if eid in seen:
                errors.append(f"{label}: duplicate experiment id `{eid}`")
            seen.add(eid)
    return errors


def load(path):
    try:
        with open(path) as f:
            return json.load(f), None
    except (OSError, json.JSONDecodeError) as e:
        return None, f"{path}: {e}"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="directory holding BENCH_<n>.json files")
    ap.add_argument(
        "--current",
        help="fresh --bench-out report from this run, gated against the latest reference",
    )
    args = ap.parse_args()
    root = pathlib.Path(args.root)

    entries = []
    for path in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if m:
            entries.append((int(m.group(1)), path))
    entries.sort()
    if not entries:
        print(f"bench_gate: no BENCH_<n>.json trajectory found under {root}", file=sys.stderr)
        return 1

    errors = []
    indices = [n for n, _ in entries]
    expected = list(range(indices[0], indices[0] + len(indices)))
    if indices != expected:
        errors.append(f"trajectory indices {indices} are not contiguous (expected {expected})")

    docs = []
    for n, path in entries:
        data, err = load(path)
        if err:
            errors.append(err)
            continue
        errors.extend(validate(path.name, data))
        docs.append((n, path.name, data))

    for (_, prev_name, prev), (_, cur_name, cur) in zip(docs, docs[1:]):
        for field, what in (("experiments", "experiment count"), ("pages_simulated", "pages")):
            try:
                before = len(prev[field]) if field == "experiments" else prev[field]
                after = len(cur[field]) if field == "experiments" else cur[field]
            except (KeyError, TypeError):
                continue  # already reported by validate()
            if after < before:
                errors.append(
                    f"{cur_name}: {what} shrank from {before} ({prev_name}) to {after}; "
                    "the suite only grows"
                )

    latest_n, latest_name, latest = docs[-1] if docs else (None, None, None)
    if args.current and latest is not None:
        current, err = load(args.current)
        if err:
            errors.append(err)
        else:
            errors.extend(validate(args.current, current))
            ref_pps = latest.get("serial_pages_per_sec")
            cur_pps = current.get("serial_pages_per_sec") if isinstance(current, dict) else None
            if isinstance(ref_pps, (int, float)) and isinstance(cur_pps, (int, float)):
                floor = ref_pps / 2
                print(
                    f"bench_gate: reference {latest_name} {ref_pps:.0f} pages/s, "
                    f"current {cur_pps:.0f} pages/s, floor {floor:.0f}"
                )
                if cur_pps < floor:
                    errors.append(
                        f"throughput regression: {cur_pps:.0f} < {floor:.0f} pages/s "
                        f"(less than half the checked-in {latest_name} reference)"
                    )

    if errors:
        for e in errors:
            print(f"bench_gate: error: {e}", file=sys.stderr)
        return 1
    print(
        f"bench_gate: OK — {len(docs)} trajectory entr{'y' if len(docs) == 1 else 'ies'} "
        f"(BENCH_{indices[0]}..BENCH_{indices[-1]}), latest {latest_name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
